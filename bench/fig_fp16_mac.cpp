// fig_fp16_mac — the FP16 workload family on the MAC engine: gate
// inventory of the binary16 add/mul/MAC netlists next to the b=16
// integer MAC, measured garble+evaluate round throughput on the real
// protocol path, and hwsim gate-program cycles at the paper's
// 24/48/96-cycle design points (CoreConfig::for_mac_width for
// b = 8/16/32).
//
// Every timed MAC round is also checked against the softfloat golden
// reference chain (fp16_ref.hpp), so the throughput rows double as a
// correctness smoke; the `verified` flag gates the JSON. The CI gate
// (tools/bench_compare.py) requires the fp16 rows to be present with
// nonzero AND counts and throughput.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "circuit/circuits.hpp"
#include "circuit/fp16.hpp"
#include "circuit/fp16_ref.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "hwsim/schedule.hpp"

namespace {

using namespace maxel;
using Clock = std::chrono::steady_clock;

struct MacRun {
  double rounds_per_sec = 0.0;
  bool verified = false;
};

// Full per-round protocol path minus the socket: fresh labels each
// round, evaluator decodes through the published color map, decoded
// accumulator compared against the reference chain every round.
MacRun run_fp16_mac(const circuit::Circuit& c, std::size_t rounds) {
  crypto::SystemRandom rng(crypto::Block{0xF9, 0x16AC});
  gc::CircuitGarbler garbler(c, gc::Scheme::kHalfGates, rng);
  gc::CircuitEvaluator evaluator(c, gc::Scheme::kHalfGates);
  crypto::Prg prg(crypto::Block{0xBE, 0x16});

  MacRun out;
  out.verified = true;
  std::uint16_t ref_acc = 0;  // +0, matching the DFF init
  const auto t0 = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    // Finite operands keep the accumulator out of the NaN/inf absorbing
    // states so every round exercises the full datapath.
    const auto finite = [&] {
      std::uint16_t v;
      do {
        v = static_cast<std::uint16_t>(prg.next_u64());
      } while ((v & 0x7C00u) == 0x7C00u);
      return v;
    };
    const std::uint16_t a = finite(), x = finite();

    const gc::RoundMaterial m = garbler.garble_round_material();
    if (garbler.rounds_garbled() == 1)
      evaluator.set_initial_state_labels(garbler.initial_state_labels());
    std::vector<gc::Block> ga(16), ex(16);
    for (std::size_t i = 0; i < 16; ++i) {
      ga[i] = garbler.garbler_input_label(i, ((a >> i) & 1u) != 0);
      ex[i] = ((x >> i) & 1u) != 0 ? m.evaluator_pairs[i].second
                                   : m.evaluator_pairs[i].first;
    }
    const auto active = evaluator.eval_round(m.tables, ga, ex, m.fixed_labels);
    const auto dec = static_cast<std::uint16_t>(
        circuit::from_bits(gc::decode_with_map(active, m.output_map)));
    ref_acc = circuit::fp16_mac_reference(ref_acc, a, x);
    out.verified = out.verified && dec == ref_acc;
  }
  const double sec =
      std::chrono::duration<double>(Clock::now() - t0).count();
  out.rounds_per_sec = static_cast<double>(rounds) / sec;
  return out;
}

}  // namespace

int main() {
  using namespace maxel::bench;

  const circuit::Circuit add_c = circuit::make_fp16_add_circuit();
  const circuit::Circuit mul_c = circuit::make_fp16_mul_circuit();
  const circuit::Circuit mac_c = circuit::make_fp16_mac_circuit();
  const circuit::MacOptions int_opt{16, 16, true,
                                    circuit::Builder::MulStructure::kTree};
  const circuit::Circuit int_c = circuit::make_mac_circuit(int_opt);

  header("FP16 workload family: netlists, garbled throughput, hwsim cycles");
  JsonReporter rep("fp16_mac");

  const struct {
    const char* point;
    const circuit::Circuit* c;
  } kCircuits[] = {{"fp16_add", &add_c},
                   {"fp16_mul", &mul_c},
                   {"fp16_mac", &mac_c},
                   {"int16_mac", &int_c}};

  std::printf("%-10s %8s %8s %12s\n", "netlist", "ANDs", "XORs",
              "bytes/round");
  rule(44);
  for (const auto& e : kCircuits) {
    const std::size_t bytes =
        e.c->and_count() * gc::bytes_per_and(gc::Scheme::kHalfGates);
    std::printf("%-10s %8zu %8zu %12zu\n", e.point, e.c->and_count(),
                e.c->xor_count(), bytes);
    rep.row()
        .str("point", e.point)
        .str("kind", "gates")
        .num("ands", static_cast<std::uint64_t>(e.c->and_count()))
        .num("xors", static_cast<std::uint64_t>(e.c->xor_count()))
        .num("table_bytes_per_round", static_cast<std::uint64_t>(bytes));
  }

  // Measured garble+evaluate+decode throughput on the sequential MAC,
  // verified against the softfloat reference chain every round.
  const std::size_t kRounds = 400;
  const MacRun mac = run_fp16_mac(mac_c, kRounds);
  std::printf("\ngarbled fp16 MAC: %.0f rounds/s over %zu rounds, %s\n",
              mac.rounds_per_sec, kRounds,
              mac.verified ? "bit-identical to softfloat chain"
                           : "MISMATCH vs softfloat chain");
  rep.row()
      .str("point", "fp16_mac_garbled")
      .str("kind", "throughput")
      .num("rounds", static_cast<std::uint64_t>(kRounds))
      .num("rounds_per_sec", mac.rounds_per_sec)
      .boolean("verified", mac.verified);

  // hwsim: one MAC round as an in-order gate program on the paper's
  // design points (cores(b) garbling cores, 3-cycle AND latency; the
  // integer engine hits 24/48/96 cycles/MAC at b=8/16/32).
  std::printf("\n%-10s %8s %8s %10s %10s %12s\n", "netlist", "b-point",
              "cores", "cycles", "stalls", "peak live");
  rule(64);
  for (const std::size_t bw : {std::size_t{8}, std::size_t{16},
                               std::size_t{32}}) {
    const hwsim::CoreConfig cfg = hwsim::CoreConfig::for_mac_width(bw);
    for (const auto& e : {std::make_pair("fp16_mac", &mac_c),
                          std::make_pair("int16_mac", &int_c)}) {
      const hwsim::GateProgramStats st =
          hwsim::schedule_gate_program(*e.second, cfg);
      std::printf("%-10s %8zu %8zu %10llu %10llu %12zu\n", e.first, bw,
                  st.cores, static_cast<unsigned long long>(st.cycles),
                  static_cast<unsigned long long>(st.stall_cycles),
                  st.peak_live_wires);
      rep.row()
          .str("point", std::string(e.first) + "-hw" + std::to_string(bw))
          .str("kind", "hwsim")
          .num("design_width", static_cast<std::uint64_t>(bw))
          .num("cores", static_cast<std::uint64_t>(st.cores))
          .num("cycles", st.cycles)
          .num("stall_cycles", st.stall_cycles)
          .num("peak_live_wires",
               static_cast<std::uint64_t>(st.peak_live_wires));
    }
  }

  std::printf("\nthe FP16 datapath pays for the alignment/normalization "
              "barrel shifters the integer MAC\ndoes not have — see "
              "docs/ACCELERATION.md for the gate-count comparison.\n");
  std::printf("wrote %s\n", rep.write().c_str());
  return mac.verified ? 0 : 1;
}
