// Case study 3 (Sec. 6): portfolio risk analysis — w * cov * w' over 252
// trading rounds for a size-2 portfolio. Runs the actual computation
// (plaintext + through the real GC protocol at case scale) and compares
// the timing model against the published 1.33 s / 15.23 ms figures.
#include <cstdio>

#include "bench_util.hpp"
#include "fixed/fixed.hpp"
#include "ml/portfolio.hpp"
#include "ml/secure_linalg.hpp"

int main() {
  using namespace maxel;
  using namespace maxel::bench;

  header("Case study: portfolio risk analysis");
  const ml::PortfolioCase c;
  const auto cov = ml::make_synthetic_covariance(c.dim, 42);
  const auto w = ml::make_portfolio_weights(c.dim, 43);

  const double risk_plain = ml::portfolio_risk(w, cov);
  std::printf("portfolio size d=%zu, rounds=%zu, plaintext risk=%.6f\n",
              c.dim, c.rounds, risk_plain);

  // Run the risk evaluation through the actual GC protocol once:
  // t = cov * w (secure matvec), risk = w . t (secure dot).
  const fixed::FixedFormat fmt{32, 10};
  const auto t = ml::secure_matvec(cov, w, fmt);
  const auto r = ml::secure_dot(w, t.values, fmt);
  std::printf("secure GC evaluation: risk=%.6f (|err|=%.2e), "
              "%llu MAC rounds, %.1f KB garbler traffic\n",
              r.value, std::abs(r.value - risk_plain),
              static_cast<unsigned long long>(t.total_rounds + r.rounds),
              static_cast<double>(t.total_garbler_bytes + r.garbler_bytes) /
                  1024.0);

  header("Timing model vs paper (252 rounds)");
  const auto timing = ml::portfolio_timing(
      c, ml::tinygarble_paper_backend(32), ml::maxelerator_backend(32));
  std::printf("MACs total: %.0f\n", timing.macs);
  std::printf("%-46s %12s\n", "", "time");
  rule(62);
  std::printf("%-46s %9.0f us\n", "plaintext GPU [31] (paper reference)",
              c.paper_gpu_plaintext_s * 1e6);
  std::printf("%-46s %9.2f s\n", "paper: TinyGarble total",
              c.paper_tinygarble_s);
  std::printf("%-46s %9.2f s\n", "model: TinyGarble MAC garbling",
              timing.tinygarble_s);
  std::printf("%-46s %9.2f ms\n", "paper: MAXelerator total",
              c.paper_maxelerator_s * 1e3);
  std::printf("%-46s %9.3f ms\n", "model: MAXelerator MAC garbling",
              timing.maxelerator_s * 1e3);
  std::printf("\nmodel garbling speedup: %.0fx (published totals include OT "
              "and host I/O; see EXPERIMENTS.md)\n",
              timing.speedup);
  return 0;
}
