// Ablation A4: precomputed garbling (Sec. 3's deployment model) vs
// on-demand garbling — the online-phase latency a client observes when
// the host serves stored MAXelerator output instead of garbling live.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "ot/precomputed_ot.hpp"
#include "proto/precompute.hpp"
#include "proto/protocol.hpp"

int main() {
  using namespace maxel;
  using namespace maxel::bench;
  using Clock = std::chrono::steady_clock;
  using crypto::Block;

  const circuit::MacOptions mac{32, 32, true};
  const circuit::Circuit c = circuit::make_mac_circuit(mac);
  const std::size_t rounds = 16;
  const std::size_t trials = 8;

  crypto::Prg prg(Block{77, 1});
  std::vector<std::vector<bool>> a_bits(rounds), x_bits(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    a_bits[r] = circuit::to_bits(prg.next_u64(), 32);
    x_bits[r] = circuit::to_bits(prg.next_u64(), 32);
  }

  header("Ablation: precomputed vs on-demand garbling (32-bit MAC, 16 rounds)");

  // --- On-demand: the garbler garbles during the client session. -------
  double on_demand_s = 0.0;
  std::uint64_t result_od = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto [g_ch, e_ch] = proto::MemoryChannel::create_pair();
    crypto::SystemRandom g_rng;
    crypto::SystemRandom e_rng;
    proto::ProtocolOptions opt;
    opt.ot = proto::OtMode::kBase;
    proto::GarblerParty garbler(c, opt, *g_ch, g_rng);
    proto::EvaluatorParty evaluator(c, opt, *e_ch, e_rng);
    const auto t0 = Clock::now();
    std::vector<bool> out;
    for (std::size_t r = 0; r < rounds; ++r) {
      garbler.garble_and_send(a_bits[r]);
      evaluator.receive_and_choose(x_bits[r]);
      garbler.finish_ot();
      out = evaluator.evaluate_round();
    }
    on_demand_s += std::chrono::duration<double>(Clock::now() - t0).count();
    result_od = circuit::from_bits(out);
  }

  // --- Precomputed: sessions garbled offline, only serving is timed. ----
  proto::GarblingBank bank(c, gc::Scheme::kHalfGates, rounds);
  crypto::SystemRandom bank_rng;
  const auto off0 = Clock::now();
  bank.precompute(trials, bank_rng);
  const double offline_s =
      std::chrono::duration<double>(Clock::now() - off0).count();

  double online_s = 0.0;
  std::uint64_t result_pc = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto [g_ch, e_ch] = proto::MemoryChannel::create_pair();
    crypto::SystemRandom g_rng;
    crypto::SystemRandom e_rng;
    proto::PrecomputedGarblerParty garbler(bank.take_session(), *g_ch, g_rng);
    proto::ProtocolOptions opt;
    opt.ot = proto::OtMode::kBase;
    proto::EvaluatorParty evaluator(c, opt, *e_ch, e_rng);
    const auto t0 = Clock::now();
    std::vector<bool> out;
    for (std::size_t r = 0; r < rounds; ++r) {
      garbler.garble_and_send(a_bits[r]);
      evaluator.receive_and_choose(x_bits[r]);
      garbler.finish_ot();
      out = evaluator.evaluate_round();
    }
    online_s += std::chrono::duration<double>(Clock::now() - t0).count();
    result_pc = circuit::from_bits(out);
  }

  // --- Fully offline: precomputed tables + precomputed (Beaver) OT. -----
  proto::GarblingBank bank2(c, gc::Scheme::kHalfGates, rounds);
  bank2.precompute(trials, bank_rng);
  double online2_s = 0.0;
  std::uint64_t result_full = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    // Offline: OT pool via base OT (would run alongside table precompute).
    auto [po_s, po_r] = proto::MemoryChannel::create_pair();
    crypto::SystemRandom s_rng;
    crypto::SystemRandom e_rng;
    ot::BaseOtSender pool_s(*po_s, s_rng);
    ot::BaseOtReceiver pool_r(*po_r, e_rng);
    const ot::OtPool pool = ot::precompute_ot_pool(
        pool_s, pool_r, rounds * 32, s_rng, e_rng);

    auto [g_ch, e_ch] = proto::MemoryChannel::create_pair();
    ot::PrecomputedOtSender ot_s(*g_ch, pool.sender_pairs);
    ot::PrecomputedOtReceiver ot_r(*e_ch, pool.choices, pool.received);
    proto::PrecomputedGarblerParty garbler(bank2.take_session(), *g_ch, ot_s);
    proto::EvaluatorParty evaluator(c, gc::Scheme::kHalfGates, *e_ch, ot_r);
    const auto t0 = Clock::now();
    std::vector<bool> out;
    for (std::size_t r = 0; r < rounds; ++r) {
      garbler.garble_and_send(a_bits[r]);
      evaluator.receive_and_choose(x_bits[r]);
      garbler.finish_ot();
      out = evaluator.evaluate_round();
    }
    online2_s += std::chrono::duration<double>(Clock::now() - t0).count();
    result_full = circuit::from_bits(out);
  }

  std::printf("results agree: %s (0x%08llx)\n",
              result_od == result_pc && result_pc == result_full ? "yes"
                                                                 : "NO",
              static_cast<unsigned long long>(result_pc));
  std::printf("%-48s %12s\n", "", "ms/session");
  rule(64);
  std::printf("%-48s %12.3f\n", "on-demand (garble + base OT online)",
              1e3 * on_demand_s / static_cast<double>(trials));
  std::printf("%-48s %12.3f\n", "precomputed tables (base OT online)",
              1e3 * online_s / static_cast<double>(trials));
  std::printf("%-48s %12.3f\n", "precomputed tables + Beaver OT (all offline)",
              1e3 * online2_s / static_cast<double>(trials));
  std::printf("%-48s %12.3f\n", "table precompute cost (offline, amortized)",
              1e3 * offline_s / static_cast<double>(trials));
  std::printf("\nonline speedups: %.2fx (tables only), %.2fx (tables + OT); "
              "bank footprint %.1f KB/session\n",
              on_demand_s / online_s, on_demand_s / online2_s,
              static_cast<double>(bank.stats().stored_bytes) /
                  static_cast<double>(trials) / 1024.0);
  std::printf(
      "This is the paper's Fig. 1 pipeline: MAXelerator fills the bank "
      "offline; the host serves clients at transfer+OT cost only.\n");
  return result_od == result_pc ? 0 : 1;
}
