// GC-core scaling of the parallel garbling engine (tentpole bench).
//
// Sweeps the GcCorePool core count for a fixed secure matrix product
// and reports wall-clock, tables/sec, MAC/sec and speedup vs 1 core —
// the software analogue of the paper's "k GC cores, one table per core
// per clock" scaling argument (Sec. 5.1, Tables 1-2). Results land in
// BENCH_core_scaling.json so later PRs can track the trajectory.
//
// Usage: fig_core_scaling [N M P bit_width [max_cores]]
//   defaults: 8 8 8 8, max_cores = max(8, hardware_concurrency)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/matmul.hpp"
#include "crypto/prg.hpp"

namespace {

using maxel::crypto::Block;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 8, m = 8, p = 8, b = 8;
  if (argc >= 5) {
    n = std::strtoull(argv[1], nullptr, 10);
    m = std::strtoull(argv[2], nullptr, 10);
    p = std::strtoull(argv[3], nullptr, 10);
    b = std::strtoull(argv[4], nullptr, 10);
  }
  if (n == 0 || m == 0 || p == 0 || b == 0 || b > 64) {
    std::fprintf(stderr,
                 "usage: fig_core_scaling [N M P bit_width [max_cores]] "
                 "(all dims >= 1, bit_width 1..64)\n");
    return 2;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t max_cores = hw > 8 ? hw : 8;
  if (argc >= 6) max_cores = std::strtoull(argv[5], nullptr, 10);
  if (max_cores == 0) max_cores = 1;

  maxel::bench::header("GC-core scaling: parallel_matmul " +
                       std::to_string(n) + "x" + std::to_string(m) + "x" +
                       std::to_string(p) + " @ " + std::to_string(b) +
                       " bit");
  std::printf("host threads: %u, AES backend: %s\n", hw,
              maxel::crypto::aes_backend_name(
                  maxel::crypto::aes_active_backend()));

  // Deterministic operands.
  maxel::crypto::Prg prg(Block{0xC0DE, 0xBEEF});
  std::vector<std::vector<std::uint64_t>> a(n, std::vector<std::uint64_t>(m));
  std::vector<std::vector<std::uint64_t>> x(m, std::vector<std::uint64_t>(p));
  for (auto& row : a)
    for (auto& v : row) v = prg.next_u64();
  for (auto& row : x)
    for (auto& v : row) v = prg.next_u64();

  const double total_macs = static_cast<double>(n) * static_cast<double>(m) *
                            static_cast<double>(p);
  maxel::bench::JsonReporter rep("core_scaling");
  maxel::bench::rule(86);
  std::printf("%7s %10s %12s %12s %9s %9s %9s\n", "cores", "wall_s",
              "tables/s", "MAC/s", "speedup", "util", "ok");
  maxel::bench::rule(86);

  double base_wall = 0.0;
  for (std::size_t cores = 1; cores <= max_cores; cores *= 2) {
    const double t0 = now_seconds();
    const auto res = maxel::core::parallel_matmul(a, x, b, Block{42, 2018},
                                                  cores);
    const double wall = now_seconds() - t0;
    if (cores == 1) base_wall = wall;

    // Per-core utilization of the modeled GC datapath, averaged over the
    // cores that did work (the paper's busy/idle slot accounting).
    double util = 0.0;
    std::size_t active_cores = 0;
    for (const auto& st : res.core_stats) {
      if (st.busy_slots + st.idle_slots == 0) continue;
      util += st.utilization();
      ++active_cores;
    }
    if (active_cores > 0) util /= static_cast<double>(active_cores);

    const double tables_per_sec = static_cast<double>(res.tables) / wall;
    const double mac_per_sec = total_macs / wall;
    const double speedup = base_wall / wall;

    std::printf("%7zu %10.3f %12s %12s %9.2f %9.2f %9s\n", cores, wall,
                maxel::bench::sci(tables_per_sec).c_str(),
                maxel::bench::sci(mac_per_sec).c_str(), speedup, util,
                res.verified ? "yes" : "NO");

    rep.row()
        .num("rows", static_cast<std::uint64_t>(n))
        .num("inner", static_cast<std::uint64_t>(m))
        .num("cols", static_cast<std::uint64_t>(p))
        .num("bit_width", static_cast<std::uint64_t>(b))
        .num("cores", static_cast<std::uint64_t>(cores))
        .num("host_threads", static_cast<std::uint64_t>(hw))
        .str("aes_backend",
             maxel::crypto::aes_backend_name(
                 maxel::crypto::aes_active_backend()))
        .num("wall_seconds", wall)
        .num("tables", res.tables)
        .num("tables_per_sec", tables_per_sec)
        .num("mac_per_sec", mac_per_sec)
        .num("speedup_vs_1core", speedup)
        .num("mean_core_utilization", util)
        .boolean("verified", res.verified);

    if (!res.verified) {
      std::fprintf(stderr, "FAIL: product did not verify at %zu cores\n",
                   cores);
      return 1;
    }
  }
  maxel::bench::rule(86);

  const std::string path = rep.write();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
