// Private portfolio risk analysis (the paper's Sec. 6 case study, run
// for real): the financial institution holds the stock covariance matrix
// cov (its market research); the investor holds the weight vector w.
// They jointly compute risk = w * cov * w' without revealing either.
#include <cstdio>

#include "ml/portfolio.hpp"
#include "ml/secure_linalg.hpp"

int main() {
  using namespace maxel;

  const std::size_t dim = 4;  // portfolio size
  const fixed::FixedFormat fmt{32, 10};

  const fixed::Matrix cov = ml::make_synthetic_covariance(dim, 11);
  const std::vector<double> w = ml::make_portfolio_weights(dim, 12);

  std::printf("portfolio of %zu stocks; institution holds a %zux%zu "
              "covariance matrix, investor holds private weights\n",
              dim, dim, dim);

  // Stage 1: t = cov * w  (institution garbles rows, investor evaluates).
  const ml::SecureMatVecResult t = ml::secure_matvec(cov, w, fmt);
  // Stage 2: risk = w . t  (weights against the masked intermediate).
  const ml::SecureDotResult risk = ml::secure_dot(w, t.values, fmt);

  const double reference = ml::portfolio_risk(w, cov);
  std::printf("secure risk-to-return input: %.6f (plaintext %.6f, "
              "fixed-point error %.2e)\n",
              risk.value, reference, std::abs(risk.value - reference));
  std::printf("protocol: %llu MAC rounds, %.1f KB garbler traffic\n",
              static_cast<unsigned long long>(t.total_rounds + risk.rounds),
              static_cast<double>(t.total_garbler_bytes +
                                  risk.garbler_bytes) /
                  1024.0);

  // What a year of daily evaluations costs on each backend (Sec. 6).
  ml::PortfolioCase c;
  c.dim = dim;
  const auto timing = ml::portfolio_timing(
      c, ml::tinygarble_paper_backend(32), ml::maxelerator_backend(32));
  std::printf("\n252 trading days of re-evaluation (%0.f MACs):\n",
              timing.macs);
  std::printf("  software GC  : %8.3f s of garbling\n", timing.tinygarble_s);
  std::printf("  MAXelerator  : %8.3f ms of garbling (%0.fx)\n",
              timing.maxelerator_s * 1e3, timing.speedup);
  return 0;
}
