// Private convolutional inference (Sec. 2.1: "Common DL computations
// including the convolutional layers can be effectively represented as
// matrix multiplication"): the server holds trained conv filters, the
// client holds a private image. The conv layer is lowered to matrix
// multiplication via im2col, and every resulting dot product runs under
// garbled circuits — exactly the workload MAXelerator accelerates.
#include <cstdio>
#include <vector>

#include "crypto/prg.hpp"
#include "fixed/matrix.hpp"
#include "ml/mac_cost_model.hpp"
#include "ml/secure_linalg.hpp"

namespace {

// Extracts k x k patches (stride 1) as im2col columns.
std::vector<std::vector<double>> im2col(const maxel::fixed::Matrix& img,
                                        std::size_t k) {
  std::vector<std::vector<double>> cols;
  for (std::size_t r = 0; r + k <= img.rows(); ++r) {
    for (std::size_t c = 0; c + k <= img.cols(); ++c) {
      std::vector<double> col;
      col.reserve(k * k);
      for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j) col.push_back(img(r + i, c + j));
      cols.push_back(std::move(col));
    }
  }
  return cols;
}

}  // namespace

int main() {
  using namespace maxel;

  const std::size_t img_size = 5, kernel = 3, filters = 2;
  const std::size_t out_size = img_size - kernel + 1;
  const fixed::FixedFormat fmt{32, 10};

  crypto::Prg prg(crypto::Block{88, 0});
  const auto uniform = [&prg] {
    return static_cast<double>(prg.next_below(2000)) / 1000.0 - 1.0;
  };

  // Server: trained filters, flattened to an im2col weight matrix.
  fixed::Matrix weights(filters, kernel * kernel);
  for (std::size_t f = 0; f < filters; ++f)
    for (std::size_t i = 0; i < kernel * kernel; ++i)
      weights(f, i) = 0.5 * uniform();

  // Client: a private image.
  fixed::Matrix image(img_size, img_size);
  for (std::size_t r = 0; r < img_size; ++r)
    for (std::size_t c = 0; c < img_size; ++c) image(r, c) = uniform();

  std::printf("private conv layer: %zux%zu image * %zu %zux%zu filters "
              "-> %zux%zux%zu (im2col + secure matmul)\n",
              img_size, img_size, filters, kernel, kernel, out_size, out_size,
              filters);

  const auto patches = im2col(image, kernel);
  std::uint64_t total_rounds = 0;
  std::uint64_t total_bytes = 0;
  double max_err = 0.0;

  std::printf("\nfeature map (filter 0), secure vs plaintext:\n");
  for (std::size_t p = 0; p < patches.size(); ++p) {
    const auto res = ml::secure_matvec(weights, patches[p], fmt);
    total_rounds += res.total_rounds;
    total_bytes += res.total_garbler_bytes;
    std::vector<double> expect = weights * patches[p];
    for (std::size_t f = 0; f < filters; ++f)
      max_err = std::max(max_err, std::abs(res.values[f] - expect[f]));
    if (p % out_size == 0) std::printf("  ");
    std::printf("%7.3f/%7.3f ", res.values[0], expect[0]);
    if (p % out_size == out_size - 1) std::printf("\n  ");
  }
  std::printf("\nmax fixed-point error across both feature maps: %.2e\n",
              max_err);
  std::printf("protocol cost: %llu MAC rounds, %.1f KB garbler traffic\n",
              static_cast<unsigned long long>(total_rounds),
              static_cast<double>(total_bytes) / 1024.0);

  // What this layer costs at scale on each backend.
  const double macs = static_cast<double>(total_rounds);
  const auto sw = ml::tinygarble_paper_backend(32);
  const auto hw = ml::maxelerator_backend(32);
  std::printf("\ngarbling time for this layer: software %.1f ms, "
              "MAXelerator %.3f ms (%0.fx)\n",
              1e3 * sw.seconds_for(macs), 1e3 * hw.seconds_for(macs),
              sw.seconds_for(macs) / hw.seconds_for(macs));
  return 0;
}
