// Quickstart: two-party secure computation with this library in three
// steps — build a netlist, run the protocol, read the result.
//
//   $ ./examples/quickstart
//
// Party roles follow the paper: the server garbles, the client evaluates
// and learns the output; neither learns the other's inputs.
#include <cstdio>

#include "circuit/circuits.hpp"
#include "ml/secure_linalg.hpp"
#include "proto/protocol.hpp"

int main() {
  using namespace maxel;

  // --- 1. Yao's millionaires: who has more? -----------------------------
  {
    const circuit::Circuit c = circuit::make_millionaires_circuit(32);
    proto::TwoPartyProtocol protocol(c);
    const std::uint64_t alice = 1'250'000;  // garbler's net worth
    const std::uint64_t bob = 2'400'000;    // evaluator's net worth
    circuit::RoundInputs inputs{circuit::to_bits(alice, 32),
                                circuit::to_bits(bob, 32)};
    const auto result = protocol.run({inputs});
    std::printf("millionaires: alice < bob ? %s   (%llu vs %llu, neither "
                "revealed)\n",
                result.outputs.at(0) ? "yes" : "no",
                static_cast<unsigned long long>(alice),
                static_cast<unsigned long long>(bob));
    std::printf("  traffic: %llu bytes garbler->evaluator, %llu back\n",
                static_cast<unsigned long long>(result.garbler_bytes_sent),
                static_cast<unsigned long long>(result.evaluator_bytes_sent));
  }

  // --- 2. The paper's core workload: a private MAC (dot product) --------
  {
    const fixed::FixedFormat fmt{32, 8};  // 32-bit fixed point, 8 frac bits
    const std::vector<double> model_row = {0.25, -1.5, 2.0, 0.75};  // server
    const std::vector<double> features = {4.0, 1.0, -0.5, 3.0};     // client
    const ml::SecureDotResult dot = ml::secure_dot(model_row, features, fmt);
    std::printf("secure dot product: %.4f (plaintext %.4f), %llu sequential "
                "MAC rounds, %llu table bytes\n",
                dot.value, fixed::dot(model_row, features),
                static_cast<unsigned long long>(dot.rounds),
                static_cast<unsigned long long>(dot.table_bytes));
  }

  // --- 3. Choosing a garbling scheme -------------------------------------
  {
    const circuit::MacOptions mac{16, 16, true};
    const circuit::Circuit c = circuit::make_dot_product_circuit(4, mac);
    for (const gc::Scheme s : {gc::Scheme::kClassic4, gc::Scheme::kGrr3,
                               gc::Scheme::kHalfGates}) {
      proto::ProtocolOptions opt;
      opt.scheme = s;
      proto::TwoPartyProtocol protocol(c, opt);
      circuit::RoundInputs inputs;
      inputs.garbler_bits.assign(c.garbler_inputs.size(), false);
      inputs.evaluator_bits.assign(c.evaluator_inputs.size(), false);
      const auto r = protocol.run({inputs});
      std::printf("scheme %-10s -> %llu bytes of garbled tables\n",
                  gc::scheme_name(s),
                  static_cast<unsigned long long>(r.table_bytes));
    }
  }
  return 0;
}
