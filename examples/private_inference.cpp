// Private neural-network inference (the paper's deep-learning
// motivation, Sec. 2.1): the cloud holds a trained dense layer (weights
// and biases), the client holds its feature vector. The matrix-vector
// product — the privacy-sensitive part — runs under garbled circuits;
// the client applies the nonlinearity locally to its own decoded
// activations.
#include <cstdio>
#include <vector>

#include "crypto/prg.hpp"
#include "fixed/matrix.hpp"
#include "ml/secure_linalg.hpp"

namespace {

double relu(double v) { return v > 0 ? v : 0; }

}  // namespace

int main() {
  using namespace maxel;

  const std::size_t in_dim = 8;
  const std::size_t out_dim = 4;
  const fixed::FixedFormat fmt{32, 10};

  // Server: a small trained layer (here: synthetic weights).
  crypto::Prg prg(crypto::Block{2024, 0});
  const auto uniform = [&prg] {
    return static_cast<double>(prg.next_below(2000)) / 1000.0 - 1.0;
  };
  fixed::Matrix weights(out_dim, in_dim);
  std::vector<double> bias(out_dim);
  for (std::size_t o = 0; o < out_dim; ++o) {
    bias[o] = 0.1 * uniform();
    for (std::size_t i = 0; i < in_dim; ++i) weights(o, i) = uniform();
  }

  // Client: private features.
  std::vector<double> features(in_dim);
  for (auto& f : features) f = uniform();

  std::printf("private dense layer: %zu -> %zu, 32-bit fixed point (Q%zu)\n",
              in_dim, out_dim, fmt.frac_bits);

  // Secure matrix-vector product: out_dim sequential-MAC dot products.
  const ml::SecureMatVecResult mv = ml::secure_matvec(weights, features, fmt);

  // The client adds the (public-to-server, sent-over) bias and applies
  // ReLU locally; compare against the plaintext reference.
  const std::vector<double> reference = weights * features;
  std::printf("%-8s %12s %12s %12s\n", "neuron", "secure", "plaintext",
              "activation");
  for (std::size_t o = 0; o < out_dim; ++o) {
    const double secure_pre = mv.values[o] + bias[o];
    const double plain_pre = reference[o] + bias[o];
    std::printf("%-8zu %12.5f %12.5f %12.5f\n", o, secure_pre, plain_pre,
                relu(secure_pre));
  }
  std::printf("\n%llu MAC rounds total, %.1f KB of garbler traffic; every "
              "multiply-accumulate ran under Yao's protocol.\n",
              static_cast<unsigned long long>(mv.total_rounds),
              static_cast<double>(mv.total_garbler_bytes) / 1024.0);
  return 0;
}
