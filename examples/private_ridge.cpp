// Private ridge-regression prediction (the Table 3 scenario, phase 2):
// the server learned a ridge model on its own data; a client wants a
// prediction on private features. The d-MAC dot product runs under GC.
#include <cstdio>

#include "ml/ridge.hpp"
#include "ml/secure_linalg.hpp"

int main() {
  using namespace maxel;

  // Server side: train on an autompg-shaped synthetic dataset.
  const ml::RidgeDataset data = ml::make_synthetic_dataset("autompg", 398, 9, 5, 0.05);
  const ml::RidgeFit fit = ml::solve_ridge(data, 1e-3);
  std::printf("server trained ridge model on %zux%zu data, train RMSE %.4f\n",
              data.n, data.d, fit.train_rmse);

  // Client side: a private query (here: one of the synthetic rows).
  std::vector<double> query(data.d);
  for (std::size_t j = 0; j < data.d; ++j) query[j] = data.x(57, j);

  // Private prediction: beta . query under GC.
  const fixed::FixedFormat fmt{32, 12};
  const ml::SecureDotResult pred = ml::secure_dot(fit.beta, query, fmt);

  const double reference = fixed::dot(fit.beta, query);
  std::printf("private prediction: %.5f  (plaintext %.5f, truth %.5f)\n",
              pred.value, reference, data.y[57]);
  std::printf("cost: %llu MAC rounds, %llu bytes of garbled tables\n",
              static_cast<unsigned long long>(pred.rounds),
              static_cast<unsigned long long>(pred.table_bytes));

  // Full-protocol cost at Table 3 scale, modeled on both backends.
  const auto rows = ml::reproduce_table3(ml::maxelerator_backend(32));
  const auto& r = rows[4];  // autompg
  std::printf("\nTable 3 context for %s: paper %0.1fs -> %0.1fs (%.1fx); "
              "our model %0.1fs -> %0.1fs (%.1fx)\n",
              r.name.c_str(), r.paper_baseline_s, r.paper_accelerated_s,
              r.paper_improvement, r.model_baseline_s, r.model_accelerated_s,
              r.model_improvement);
  return 0;
}
