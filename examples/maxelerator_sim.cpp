// Drives the cycle-accurate MAXelerator simulator end to end (Fig. 1):
// the accelerator garbles a batch of sequential MACs; the garbled tables
// and labels stream to the "host", and a standard software evaluator —
// playing the client — evaluates and decodes. The run prints the
// architectural statistics next to the paper's claims.
#include <cstdio>
#include <vector>

#include "circuit/circuits.hpp"
#include "core/maxelerator.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"

int main() {
  using namespace maxel;
  using crypto::Block;

  const std::size_t b = 32;
  const std::uint64_t rounds = 32;  // one length-32 private dot product

  core::MaxeleratorConfig cfg;
  cfg.bit_width = b;
  crypto::SystemRandom rng;
  core::MaxeleratorSim sim(cfg, rng);

  std::printf("MAXelerator simulator: b=%zu, %zu GC cores (%zu MUX_ADD + %zu "
              "TREE), 200 MHz\n",
              b, sim.hw().cores(), sim.hw().seg1_cores(),
              sim.hw().seg2_cores());

  // Client-side evaluator over the accelerator's table stream.
  gc::CircuitEvaluator evaluator(sim.netlist(), gc::Scheme::kHalfGates);
  crypto::Prg data(Block{99, 1});
  const circuit::MacOptions ref{b, b, true};
  std::uint64_t expect = 0;
  std::vector<Block> out_labels;
  std::vector<bool> out_map;
  const std::uint64_t mask = (1ull << b) - 1;

  sim.run(rounds, [&](core::RoundOutput&& ro) {
    if (ro.round == 0)
      evaluator.set_initial_state_labels(ro.initial_state_active);
    const std::uint64_t a = data.next_u64() & mask;   // server element
    const std::uint64_t x = data.next_u64() & mask;   // client element
    expect = circuit::mac_reference(expect, a, x, ref);

    std::vector<Block> g_labels(b), e_labels(b);
    for (std::size_t i = 0; i < b; ++i) {
      g_labels[i] = ((a >> i) & 1u) ? ro.garbler_labels0[i] ^ sim.delta()
                                    : ro.garbler_labels0[i];
      e_labels[i] = ((x >> i) & 1u) ? ro.evaluator_labels0[i] ^ sim.delta()
                                    : ro.evaluator_labels0[i];
    }
    out_labels = evaluator.eval_round(
        ro.tables, g_labels, e_labels,
        {ro.fixed_labels0[0], ro.fixed_labels0[1] ^ sim.delta()});
    out_map.resize(ro.output_labels0.size());
    for (std::size_t i = 0; i < out_map.size(); ++i)
      out_map[i] = ro.output_labels0[i].lsb();
  });

  const std::uint64_t decoded =
      circuit::from_bits(gc::decode_with_map(out_labels, out_map));
  std::printf("client decoded accumulator: 0x%08llx, reference 0x%08llx -> %s\n",
              static_cast<unsigned long long>(decoded),
              static_cast<unsigned long long>(expect),
              decoded == expect ? "MATCH" : "MISMATCH");

  const auto& st = sim.stats();
  std::printf("\narchitecture vs paper claims:\n");
  std::printf("  cycles/MAC          : %.0f   (paper: 96 for b=32)\n",
              st.cycles_per_mac);
  std::printf("  time/MAC            : %.2f us (paper: 0.48)\n",
              st.time_per_mac_us());
  std::printf("  throughput/core     : %.3g MAC/s (paper: 8.68E4)\n",
              st.mac_per_sec_per_core());
  std::printf("  idle slots/stage    : %zu   (paper: at most 2)\n",
              st.steady_idle_per_stage);
  std::printf("  pipeline latency    : %zu stages (paper: b+log2(b)+2 = 39)\n",
              st.pipeline_latency_stages);
  std::printf("  engine utilization  : %.1f%%\n", 100.0 * st.utilization());
  std::printf("  tables emitted      : %llu (%.2f MB over PCIe, %.2f ms)\n",
              static_cast<unsigned long long>(st.tables),
              static_cast<double>(st.pcie_bytes) / 1e6,
              st.pcie_seconds * 1e3);
  std::printf("  RNG bank            : %.1f%% power-gated, peak %llu "
              "bits/cycle, %llu underflows\n",
              100.0 * st.rng_gated_fraction,
              static_cast<unsigned long long>(st.rng_peak_bits_per_cycle),
              static_cast<unsigned long long>(st.rng_underflows));
  return decoded == expect ? 0 : 1;
}
