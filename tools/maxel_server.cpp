// maxel_server — garbler-side network daemon: serves precomputed
// garbling sessions (sequential secure MAC) to remote maxel_client
// evaluators over TCP. See src/net/service.hpp for the flags and
// docs/PROTOCOL.md for the wire format.
#include "net/service.hpp"

int main(int argc, char** argv) {
  return maxel::net::serve_command(argc - 1, argv + 1);
}
