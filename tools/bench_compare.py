#!/usr/bin/env python3
"""Compare BENCH_*.json bench output against checked-in baselines.

The benches (bench/fig_*.cpp) emit flat JSON row arrays via
bench::JsonReporter. This script gates perf regressions in CI: for each
bench named in CHECKS it matches measured rows to baseline rows by the
bench's key field and applies per-metric tolerances --

  * throughput metrics (mac_per_sec, ...) fail when the measured value
    drops below baseline * (1 - throughput_tol); the default 0.45
    absorbs shared-runner noise while a deliberate 2x slowdown
    (ratio 0.5) still fails;
  * byte metrics (bytes_per_mac) are machine-independent, so they get a
    tight 5% ceiling -- protocol bloat fails even when the runner is
    fast enough to hide it in wall time;
  * "verified" fields must be true -- a bench that produced wrong MACs
    never passes, whatever its speed;
  * relational invariants (stream strictly below precomputed on
    time-to-first-table and peak resident tables) compare rows of the
    same run, so they hold on any machine speed.

Usage:
  bench_compare.py --baseline-dir bench/baselines [--bench-dir DIR]
                   [--throughput-tol 0.45] [--bytes-tol 0.05] [--update]

--update copies the measured files over the baselines (run after an
intentional perf change, then commit the new baselines).
"""

import argparse
import json
import os
import shutil
import sys

# Per-bench comparison spec: key = row-identifying field; lower_bound =
# metrics that must not drop; upper_bound = metrics that must not grow.
CHECKS = {
    "net_loopback": {
        "key": "transport",
        "lower_bound": ["mac_per_sec"],
        "upper_bound": ["bytes_per_mac", "setup_bytes"],
        # (metric, row, reference_row, min_ratio): measured-run invariant.
        # The no-op FaultyChannel wrapper must stay within 5% of the raw
        # TCP transport -- the fault-injection seam is free in production.
        "ratio": [
            ("mac_per_sec", "tcp-faulty-nop", "tcp-loopback", 0.95),
        ],
        # (metric, row, reference_row, max_ratio): the slim v3 wire must
        # stay well under the v2 protocol's per-MAC bytes, and a
        # resumed session's setup must stay a sliver of a fresh one's
        # (base OT + extension amortized across the client's lifetime).
        "ratio_max": [
            ("bytes_per_mac", "tcp-loopback-v3", "tcp-loopback", 0.65),
            ("setup_bytes", "v3-resume-100", "v3-resume-1", 0.10),
        ],
    },
    "reusable": {
        "key": "point",
        # No absolute mac_per_sec floors: the 1-session rows are a few
        # ms of wall time, all connect latency, and vary several-fold
        # between runners. The wire bytes are deterministic, and the
        # 1000-session ratios below hold at any machine speed -- those
        # carry the regression gate.
        "lower_bound": [],
        "upper_bound": ["bytes_per_mac"],
        # The whole point of garble-once: after 1000 sessions the cached
        # artifact must have collapsed the wire to a sliver of v3's
        # per-MAC bytes and be serving MACs at a multiple of v3's rate.
        # Measured-run ratios, so they hold at any machine speed.
        "ratio": [
            ("mac_per_sec", "reusable-1000", "v3-1000", 2.0),
        ],
        "ratio_max": [
            ("bytes_per_mac", "reusable-1000", "v3-1000", 0.25),
        ],
    },
    "broker_scaling": {
        "key": "point",
        # Absolute sessions/s floors carry the usual runner tolerance;
        # the "failed" ceiling is exact -- the sweep's contract is zero
        # failed sessions at every tier, 10k included, on any machine.
        "lower_bound": ["sessions_per_sec"],
        "upper_bound": ["failed"],
        # The evloop gate: at the 100-concurrent point the shard front
        # must serve at least the blocking worker pool's throughput --
        # a measured-run ratio, so it holds at any machine speed. (Past
        # that point the worker pool has no comparable configuration:
        # 10k concurrent would need 10k stacks.)
        "ratio": [
            ("sessions_per_sec", "evloop-100", "workerpool-100", 1.0),
        ],
    },
    "core_scaling": {
        "key": "cores",
        "lower_bound": ["mac_per_sec"],
        "upper_bound": [],
    },
    "schedule_locality": {
        "key": "point",
        # No absolute MAC/s floors: the in-process garble+eval loop is
        # runner-speed dependent. The locality metrics (peak live wires,
        # planned buffer bytes, hwsim cycles) are deterministic for a
        # given netlist -- the ceilings pin them against regression.
        "lower_bound": [],
        "upper_bound": [
            "peak_live_wires",
            "garbler_buffer_bytes",
            "evaluator_buffer_bytes",
            "hw_cycles",
        ],
        # The scheduling gate (measured-run ratios, machine-independent
        # for the deterministic metrics): on the b=16 MAC netlist the
        # scheduled order must cut peak live wires to <=0.9x and must
        # not cost software throughput (the bench reports the best of
        # several interleaved attempts to de-noise the MAC/s ratio).
        "ratio": [
            ("mac_per_sec", "mac-b16-scheduled", "mac-b16-unscheduled", 1.0),
        ],
        "ratio_max": [
            ("peak_live_wires", "mac-b16-scheduled", "mac-b16-unscheduled",
             0.9),
            ("hw_cycles", "mac-b16-scheduled", "mac-b16-unscheduled", 0.9),
            ("peak_live_wires", "bristol-mul32-scheduled",
             "bristol-mul32-unscheduled", 0.9),
        ],
    },
    "fp16_mac": {
        "key": "point",
        # The netlist rows (AND/XOR counts, table bytes, hwsim cycles)
        # are deterministic properties of the circuits -- tight ceilings
        # pin them against regression, and a missing fp16 row fails the
        # gate outright. The garbled-throughput row carries the usual
        # runner tolerance; its verified flag (bit-identity to the
        # softfloat reference chain every round) is mandatory.
        "lower_bound": ["rounds_per_sec"],
        "upper_bound": ["ands", "table_bytes_per_round", "cycles",
                        "peak_live_wires"],
        # The documented cost envelope of going floating point: the
        # FP16 MAC's AND count must stay within 5x the b=16 integer
        # MAC's (measured ~3.9x -- the alignment/normalization barrel
        # shifters; see docs/ACCELERATION.md).
        "ratio_max": [
            ("ands", "fp16_mac", "int16_mac", 5.0),
        ],
    },
    "case_conv_layer": {
        "key": "point",
        # Both pool phases must verify against the direct convolution
        # (the "verified" check) and the broker phase requires zero
        # failed sessions. Table counts are deterministic for the layer
        # shape; MACs/s floors carry the runner tolerance.
        "lower_bound": ["macs_per_sec"],
        "upper_bound": ["failed", "tables"],
        # The serving gate, a measured-run ratio: the broker path's
        # MACs/s must stay within tolerance of the warm per-MAC
        # extrapolation -- handshake/artifact/OT overhead may tax the
        # layer, but not collapse it.
        "ratio": [
            ("macs_per_sec", "layer_broker", "per_mac_extrapolation", 0.3),
        ],
    },
    "stream_pipeline": {
        "key": "mode",
        "lower_bound": ["mac_per_sec"],
        "upper_bound": ["bytes_per_mac"],
        # (metric, smaller_mode, larger_mode): measured-run invariant.
        "relational": [
            ("first_table_seconds", "stream", "precomputed"),
            ("peak_resident_tables", "stream", "precomputed"),
        ],
    },
}


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    return rows


def index_rows(rows, key):
    out = {}
    for row in rows:
        if key in row:
            out[str(row[key])] = row
    return out


def check_bench(name, spec, baseline_rows, measured_rows, args, failures):
    key = spec["key"]
    baseline = index_rows(baseline_rows, key)
    measured = index_rows(measured_rows, key)

    for row_key, base_row in sorted(baseline.items()):
        meas_row = measured.get(row_key)
        if meas_row is None:
            failures.append(
                f"{name}[{key}={row_key}]: row missing from measured output")
            continue
        if meas_row.get("verified") is False:
            failures.append(
                f"{name}[{key}={row_key}]: verified=false (wrong results)")
        for metric in spec["lower_bound"]:
            if metric not in base_row or metric not in meas_row:
                continue
            floor = base_row[metric] * (1.0 - args.throughput_tol)
            status = "ok" if meas_row[metric] >= floor else "FAIL"
            print(f"  {name}[{key}={row_key}] {metric}: "
                  f"{meas_row[metric]:.4g} vs baseline "
                  f"{base_row[metric]:.4g} (floor {floor:.4g}) {status}")
            if status == "FAIL":
                failures.append(
                    f"{name}[{key}={row_key}]: {metric} "
                    f"{meas_row[metric]:.4g} < floor {floor:.4g} "
                    f"(baseline {base_row[metric]:.4g})")
        for metric in spec["upper_bound"]:
            if metric not in base_row or metric not in meas_row:
                continue
            ceiling = base_row[metric] * (1.0 + args.bytes_tol)
            status = "ok" if meas_row[metric] <= ceiling else "FAIL"
            print(f"  {name}[{key}={row_key}] {metric}: "
                  f"{meas_row[metric]:.4g} vs baseline "
                  f"{base_row[metric]:.4g} (ceiling {ceiling:.4g}) {status}")
            if status == "FAIL":
                failures.append(
                    f"{name}[{key}={row_key}]: {metric} "
                    f"{meas_row[metric]:.4g} > ceiling {ceiling:.4g} "
                    f"(baseline {base_row[metric]:.4g})")

    for metric, small_key, large_key in spec.get("relational", []):
        small = measured.get(small_key)
        large = measured.get(large_key)
        if small is None or large is None:
            failures.append(
                f"{name}: relational check needs rows "
                f"{key}={small_key} and {key}={large_key}")
            continue
        ok = small[metric] < large[metric]
        print(f"  {name} invariant {metric}: {small_key} "
              f"{small[metric]:.4g} < {large_key} {large[metric]:.4g} "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{name}: expected {metric}[{small_key}] < "
                f"{metric}[{large_key}], got {small[metric]:.4g} >= "
                f"{large[metric]:.4g}")

    for metric, row_key, ref_key, min_ratio in spec.get("ratio", []):
        row = measured.get(row_key)
        ref = measured.get(ref_key)
        if row is None or ref is None:
            failures.append(
                f"{name}: ratio check needs rows "
                f"{key}={row_key} and {key}={ref_key}")
            continue
        ratio = row[metric] / ref[metric] if ref[metric] else 0.0
        ok = ratio >= min_ratio
        print(f"  {name} ratio {metric}: {row_key}/{ref_key} = "
              f"{ratio:.3f} (floor {min_ratio}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{name}: {metric}[{row_key}] / {metric}[{ref_key}] = "
                f"{ratio:.3f} < {min_ratio}")

    for metric, row_key, ref_key, max_ratio in spec.get("ratio_max", []):
        row = measured.get(row_key)
        ref = measured.get(ref_key)
        if row is None or ref is None:
            failures.append(
                f"{name}: ratio_max check needs rows "
                f"{key}={row_key} and {key}={ref_key}")
            continue
        ratio = row[metric] / ref[metric] if ref[metric] else float("inf")
        ok = ratio <= max_ratio
        print(f"  {name} ratio {metric}: {row_key}/{ref_key} = "
              f"{ratio:.3f} (ceiling {max_ratio}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{name}: {metric}[{row_key}] / {metric}[{ref_key}] = "
                f"{ratio:.3f} > {max_ratio}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--bench-dir", default=".",
                    help="directory holding the fresh BENCH_*.json files")
    ap.add_argument("--throughput-tol", type=float, default=0.45,
                    help="allowed fractional drop in throughput metrics")
    ap.add_argument("--bytes-tol", type=float, default=0.05,
                    help="allowed fractional growth in byte metrics")
    ap.add_argument("--update", action="store_true",
                    help="copy measured files over the baselines and exit")
    args = ap.parse_args()

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for name in sorted(CHECKS):
            src = os.path.join(args.bench_dir, f"BENCH_{name}.json")
            if not os.path.exists(src):
                print(f"skip {name}: {src} not found")
                continue
            dst = os.path.join(args.baseline_dir, f"BENCH_{name}.json")
            shutil.copyfile(src, dst)
            print(f"updated {dst}")
        return 0

    failures = []
    compared = 0
    for name, spec in sorted(CHECKS.items()):
        base_path = os.path.join(args.baseline_dir, f"BENCH_{name}.json")
        meas_path = os.path.join(args.bench_dir, f"BENCH_{name}.json")
        if not os.path.exists(base_path):
            print(f"skip {name}: no baseline at {base_path}")
            continue
        if not os.path.exists(meas_path):
            failures.append(f"{name}: measured file {meas_path} not found")
            continue
        print(f"{name}: {meas_path} vs {base_path}")
        check_bench(name, spec, load_rows(base_path), load_rows(meas_path),
                    args, failures)
        compared += 1

    if compared == 0 and not failures:
        print("no baselines found; nothing compared")
        return 1
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nOK: {compared} bench(es) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
