// maxel_client — evaluator-side network client: connects to a
// maxel_server, runs one garbled-MAC session over TCP (handshake, OT,
// streaming evaluation), prints and dumps per-session stats. See
// src/net/service.hpp for the flags and docs/PROTOCOL.md for the wire
// format.
#include "net/service.hpp"

int main(int argc, char** argv) {
  return maxel::net::connect_command(argc - 1, argv + 1);
}
