// maxelctl — command-line front end for the MAXelerator library.
//
//   maxelctl circuit <mac|dot|mult|millionaires|div|sqrt> [--bits N]
//            [--length L] [--serial] [--optimize] [--out FILE]
//       Build a netlist, print its statistics, optionally export it in
//       Bristol Fashion.
//   maxelctl stats --in FILE [--optimize]
//       Read a Bristol circuit and report gate counts / depth.
//   maxelctl simulate [--bits N] [--rounds M]
//       Run the cycle-accurate accelerator, verify against the software
//       evaluator, print the architecture statistics.
//   maxelctl bank [--bits N] [--rounds M] [--sessions K] [--out PREFIX]
//       Precompute garbling sessions and store them on disk (Fig. 1's
//       host-side store).
//   maxelctl bench-mac [--bits N] [--rounds M]
//       Measure software garbling throughput on this machine.
//   maxelctl serve / maxelctl connect
//       The network service (garbler server / evaluator client); same
//       flags as the standalone maxel_server / maxel_client binaries —
//       see src/net/service.hpp and docs/PROTOCOL.md. `serve` is either
//       the sequential server (default), the concurrent session
//       broker (--spool DIR or --workers N — see src/svc/service.hpp
//       and docs/OPERATIONS.md), or the sharded event-loop broker
//       (--evloop [--shards N] — see src/evloop/ev_service.hpp); all
//       take the unified session-mode
//       selector --mode {precomputed|stream|v3|reusable} (the client
//       side of `connect` takes the same flag to pick what it asks
//       for; --stream/--v3/--no-stream/--no-v3/--no-reusable survive
//       as deprecated aliases). `reusable` trades garbler privacy for
//       garble-once throughput — see docs/SECURITY_MODELS.md. `connect`
//       retries failed sessions from scratch with
//       --retries/--retry-backoff; both sides take --fault-plan SPEC
//       (or the MAXEL_FAULT_PLAN env var) to inject a deterministic
//       schedule of link faults for chaos testing, and `serve` bounds
//       stalled clients with --idle-timeout MS — see src/net/fault.hpp
//       and docs/TESTING.md.
//   maxelctl spool --dir DIR [--fill K --bits N --rounds M]
//       Inspect or pre-fill a disk session spool; lists resident
//       reusable artifacts (key, size, evaluations served, lineage).
//   maxelctl spool purge --lane reusable --dir DIR
//       Retire the spool's reusable artifacts (forces a re-garble).
//   maxelctl stats --metrics FILE
//       Pretty-print a broker metrics dump (`serve --metrics FILE`).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "baseline/tinygarble.hpp"
#include "circuit/arith_ext.hpp"
#include "circuit/bristol.hpp"
#include "circuit/circuits.hpp"
#include "circuit/optimize.hpp"
#include "core/maxelerator.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "evloop/ev_service.hpp"
#include "net/service.hpp"
#include "proto/precompute.hpp"
#include "proto/session_io.hpp"
#include "svc/service.hpp"

namespace {

using namespace maxel;

struct Args {
  std::string command;
  std::string kind;
  std::size_t bits = 32;
  std::size_t length = 4;
  std::size_t rounds = 16;
  std::size_t sessions = 1;
  bool serial = false;
  bool optimize = false;
  std::string in;
  std::string out;
};

int usage() {
  std::fprintf(stderr,
               "usage: maxelctl "
               "<circuit|stats|simulate|bank|bench-mac|serve|connect|spool> "
               "[options]\n"
               "  serve: sequential server (default), concurrent broker "
               "(--spool DIR / --workers N),\n"
               "  or sharded event-loop broker (--evloop [--shards N]);\n"
               "  session modes via --mode "
               "{precomputed|stream|v3|reusable} on serve and connect\n"
               "  spool purge --lane reusable --dir DIR retires cached "
               "reusable artifacts\n"
               "  see the header of tools/maxelctl.cpp\n");
  return 2;
}

bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) return false;
  a.command = argv[1];
  int i = 2;
  if (a.command == "circuit") {
    if (argc < 3) return false;
    a.kind = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--bits") {
      const char* v = next();
      if (!v) return false;
      a.bits = static_cast<std::size_t>(std::stoul(v));
    } else if (flag == "--length") {
      const char* v = next();
      if (!v) return false;
      a.length = static_cast<std::size_t>(std::stoul(v));
    } else if (flag == "--rounds") {
      const char* v = next();
      if (!v) return false;
      a.rounds = static_cast<std::size_t>(std::stoul(v));
    } else if (flag == "--sessions") {
      const char* v = next();
      if (!v) return false;
      a.sessions = static_cast<std::size_t>(std::stoul(v));
    } else if (flag == "--serial") {
      a.serial = true;
    } else if (flag == "--optimize") {
      a.optimize = true;
    } else if (flag == "--in") {
      const char* v = next();
      if (!v) return false;
      a.in = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      a.out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void print_stats(const circuit::Circuit& c) {
  const auto h = circuit::histogram(c);
  std::printf("circuit %s\n", c.name.empty() ? "(unnamed)" : c.name.c_str());
  std::printf("  inputs: %zu garbler + %zu evaluator, outputs: %zu, dffs: %zu\n",
              c.garbler_inputs.size(), c.evaluator_inputs.size(),
              c.outputs.size(), c.dffs.size());
  std::printf("  gates: %zu total, %zu non-XOR (AND %zu, NAND %zu, OR %zu, "
              "NOR %zu), %zu free (XOR %zu, XNOR %zu)\n",
              c.gates.size(), c.and_count(), h.and_gates, h.nand_gates,
              h.or_gates, h.nor_gates, c.xor_count(), h.xor_gates,
              h.xnor_gates);
  std::printf("  multiplicative depth: %zu\n", circuit::and_depth(c));
  std::printf("  garbled size: %zu bytes/round (half gates)\n",
              c.and_count() * gc::bytes_per_and(gc::Scheme::kHalfGates));
}

circuit::Circuit build_circuit(const Args& a) {
  circuit::MacOptions mac{a.bits, a.bits, true,
                          a.serial ? circuit::Builder::MulStructure::kSerial
                                   : circuit::Builder::MulStructure::kTree};
  if (a.kind == "mac") return circuit::make_mac_circuit(mac);
  if (a.kind == "dot") return circuit::make_dot_product_circuit(a.length, mac);
  if (a.kind == "mult") return circuit::make_multiplier_circuit(mac);
  if (a.kind == "millionaires")
    return circuit::make_millionaires_circuit(a.bits);
  if (a.kind == "div") return circuit::make_divider_circuit(a.bits);
  if (a.kind == "sqrt") return circuit::make_sqrt_circuit(a.bits);
  throw std::runtime_error("unknown circuit kind: " + a.kind);
}

int cmd_circuit(const Args& a) {
  circuit::Circuit c = build_circuit(a);
  if (a.optimize) {
    circuit::OptimizeStats st;
    c = circuit::optimize(c, &st);
    std::printf("optimize: %zu -> %zu gates\n", st.gates_before,
                st.gates_after);
  }
  print_stats(c);
  if (!a.out.empty()) {
    if (c.is_sequential()) {
      std::fprintf(stderr,
                   "note: %s is sequential; Bristol export unsupported\n",
                   a.kind.c_str());
      return 1;
    }
    std::ofstream os(a.out);
    circuit::write_bristol(c, os);
    std::printf("wrote Bristol netlist to %s\n", a.out.c_str());
  }
  return 0;
}

int cmd_stats(const Args& a) {
  if (a.in.empty()) return usage();
  std::ifstream is(a.in);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", a.in.c_str());
    return 1;
  }
  circuit::Circuit c = circuit::read_bristol(is);
  if (a.optimize) c = circuit::optimize(c);
  print_stats(c);
  return 0;
}

int cmd_simulate(const Args& a) {
  core::MaxeleratorConfig cfg;
  cfg.bit_width = a.bits;
  crypto::SystemRandom rng;
  core::MaxeleratorSim sim(cfg, rng);
  gc::CircuitEvaluator evaluator(sim.netlist(), gc::Scheme::kHalfGates);

  crypto::Prg data(crypto::Block{42, 42});
  const circuit::MacOptions ref{a.bits, a.bits, true};
  const std::uint64_t mask =
      a.bits >= 64 ? ~0ull : ((1ull << a.bits) - 1);
  std::uint64_t expect = 0;
  std::vector<crypto::Block> out_labels;
  std::vector<bool> out_map;

  sim.run(a.rounds, [&](core::RoundOutput&& ro) {
    if (ro.round == 0)
      evaluator.set_initial_state_labels(ro.initial_state_active);
    const std::uint64_t av = data.next_u64() & mask;
    const std::uint64_t xv = data.next_u64() & mask;
    expect = circuit::mac_reference(expect, av, xv, ref);
    std::vector<crypto::Block> g(a.bits), e(a.bits);
    for (std::size_t i = 0; i < a.bits; ++i) {
      g[i] = ((av >> i) & 1u) ? ro.garbler_labels0[i] ^ sim.delta()
                              : ro.garbler_labels0[i];
      e[i] = ((xv >> i) & 1u) ? ro.evaluator_labels0[i] ^ sim.delta()
                              : ro.evaluator_labels0[i];
    }
    out_labels = evaluator.eval_round(
        ro.tables, g, e,
        {ro.fixed_labels0[0], ro.fixed_labels0[1] ^ sim.delta()});
    out_map.resize(ro.output_labels0.size());
    for (std::size_t i = 0; i < out_map.size(); ++i)
      out_map[i] = ro.output_labels0[i].lsb();
  });

  const std::uint64_t decoded =
      circuit::from_bits(gc::decode_with_map(out_labels, out_map));
  const auto& st = sim.stats();
  std::printf("simulated %zu MAC rounds at b=%zu: %s\n", a.rounds, a.bits,
              decoded == expect ? "VERIFIED" : "MISMATCH");
  std::printf("  cores %zu | cycles/MAC %.0f | time/MAC %.2f us | "
              "util %.1f%% | idle %zu/stage | latency %zu stages\n",
              st.cores, st.cycles_per_mac, st.time_per_mac_us(),
              100.0 * st.utilization(), st.steady_idle_per_stage,
              st.pipeline_latency_stages);
  std::printf("  tables %llu (%.2f MB) | rng gated %.1f%% | pcie %.3f ms\n",
              static_cast<unsigned long long>(st.tables),
              static_cast<double>(st.table_bytes) / 1e6,
              100.0 * st.rng_gated_fraction, st.pcie_seconds * 1e3);
  return decoded == expect ? 0 : 1;
}

int cmd_bank(const Args& a) {
  const circuit::MacOptions mac{a.bits, a.bits, true};
  const circuit::Circuit c = circuit::make_mac_circuit(mac);
  proto::GarblingBank bank(c, gc::Scheme::kHalfGates, a.rounds);
  crypto::SystemRandom rng;
  bank.precompute(a.sessions, rng);
  const std::string prefix = a.out.empty() ? "maxel_session" : a.out;
  for (std::size_t i = 0; i < a.sessions; ++i) {
    const std::string path = prefix + "_" + std::to_string(i) + ".bin";
    proto::save_session_file(bank.take_session(), path);
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("%zu sessions x %zu rounds (b=%zu), %.1f KB total stored\n",
              a.sessions, a.rounds, a.bits,
              static_cast<double>(bank.stats().stored_bytes) / 1024.0);
  return 0;
}

int cmd_bench_mac(const Args& a) {
  const auto r = baseline::measure_software_mac(a.bits, a.rounds);
  std::printf("software garbling, b=%zu: %.2f us/MAC, %.0f MAC/s "
              "(%zu ANDs/MAC)\n",
              a.bits, r.time_per_mac_us(), r.macs_per_sec(), r.ands_per_mac);
  return 0;
}

}  // namespace

namespace {

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // The network/service subcommands own their flag parsing (shared with
  // the standalone maxel_server / maxel_client binaries). `serve` routes
  // to the concurrent broker when spool/worker flags appear.
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    if (has_flag(argc - 2, argv + 2, "--evloop"))
      return maxel::evloop::evloop_command(argc - 2, argv + 2);
    if (has_flag(argc - 2, argv + 2, "--spool") ||
        has_flag(argc - 2, argv + 2, "--workers"))
      return maxel::svc::broker_command(argc - 2, argv + 2);
    return maxel::net::serve_command(argc - 2, argv + 2);
  }
  if (argc >= 2 && std::strcmp(argv[1], "connect") == 0)
    return maxel::net::connect_command(argc - 2, argv + 2);
  if (argc >= 2 && std::strcmp(argv[1], "spool") == 0)
    return maxel::svc::spool_command(argc - 2, argv + 2);
  if (argc >= 2 && std::strcmp(argv[1], "stats") == 0 &&
      has_flag(argc - 2, argv + 2, "--metrics"))
    return maxel::svc::stats_command(argc - 2, argv + 2);

  Args a;
  if (!parse(argc, argv, a)) return usage();
  try {
    if (a.command == "circuit") return cmd_circuit(a);
    if (a.command == "stats") return cmd_stats(a);
    if (a.command == "simulate") return cmd_simulate(a);
    if (a.command == "bank") return cmd_bank(a);
    if (a.command == "bench-mac") return cmd_bench_mac(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "maxelctl: %s\n", e.what());
    return 1;
  }
  return usage();
}
