// Session persistence: byte-exact round trips, a served-after-reload
// end-to-end run, and malformed-stream rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "proto/precompute.hpp"
#include "proto/protocol.hpp"
#include "proto/session_io.hpp"
#include "sweep_env.hpp"

namespace maxel::proto {
namespace {

using circuit::MacOptions;
using circuit::to_bits;
using crypto::Block;
using crypto::SystemRandom;

PrecomputedSession make_session(const circuit::Circuit& c, std::size_t rounds,
                                std::uint64_t seed) {
  GarblingBank bank(c, gc::Scheme::kHalfGates, rounds);
  SystemRandom rng(Block{seed, 0x10});
  bank.precompute(1, rng);
  return bank.take_session();
}

TEST(SessionIo, RoundTripIsExact) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const PrecomputedSession s = make_session(c, 4, 1);

  std::stringstream buf;
  save_session(s, buf);
  const PrecomputedSession t = load_session(buf);

  EXPECT_EQ(t.scheme, s.scheme);
  EXPECT_EQ(t.delta, s.delta);
  ASSERT_EQ(t.rounds.size(), s.rounds.size());
  for (std::size_t r = 0; r < s.rounds.size(); ++r) {
    EXPECT_EQ(t.rounds[r].tables.tables, s.rounds[r].tables.tables);
    EXPECT_EQ(t.rounds[r].garbler_labels0, s.rounds[r].garbler_labels0);
    EXPECT_EQ(t.rounds[r].evaluator_pairs, s.rounds[r].evaluator_pairs);
    EXPECT_EQ(t.rounds[r].fixed_labels, s.rounds[r].fixed_labels);
    EXPECT_EQ(t.rounds[r].output_map, s.rounds[r].output_map);
  }
  EXPECT_EQ(t.initial_state_labels, s.initial_state_labels);
}

TEST(SessionIo, ReloadedSessionServesCorrectly) {
  const MacOptions mac{8, 8, true};
  const circuit::Circuit c = circuit::make_mac_circuit(mac);
  std::stringstream buf;
  save_session(make_session(c, 5, 2), buf);
  PrecomputedSession reloaded = load_session(buf);

  auto [g_ch, e_ch] = MemoryChannel::create_pair();
  SystemRandom g_rng(Block{3, 1});
  SystemRandom e_rng(Block{3, 2});
  PrecomputedGarblerParty garbler(std::move(reloaded), *g_ch, g_rng);
  ProtocolOptions opt;
  opt.ot = OtMode::kBase;
  EvaluatorParty evaluator(c, opt, *e_ch, e_rng);

  crypto::Prg prg(Block{4, 4});
  std::uint64_t expect = 0;
  std::vector<bool> out;
  for (int r = 0; r < 5; ++r) {
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    expect = circuit::mac_reference(expect, a, x, mac);
    garbler.garble_and_send(to_bits(a, 8));
    evaluator.receive_and_choose(to_bits(x, 8));
    garbler.finish_ot();
    out = evaluator.evaluate_round();
  }
  EXPECT_EQ(circuit::from_bits(out), expect);
}

TEST(SessionIo, FileRoundTrip) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(8);
  const PrecomputedSession s = make_session(c, 1, 5);
  const std::string path = "/tmp/maxel_session_test.bin";
  save_session_file(s, path);
  const PrecomputedSession t = load_session_file(path);
  EXPECT_EQ(t.delta, s.delta);
  EXPECT_EQ(t.rounds.size(), 1u);
}

TEST(SessionIo, SerializeParseMatchesStreamCodec) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const PrecomputedSession s = make_session(c, 3, 9);

  std::stringstream buf;
  save_session(s, buf);
  const std::string via_stream = buf.str();
  const std::vector<std::uint8_t> via_bytes = serialize_session(s);
  ASSERT_EQ(via_bytes.size(), via_stream.size());
  EXPECT_TRUE(std::equal(via_bytes.begin(), via_bytes.end(),
                         via_stream.begin(),
                         [](std::uint8_t a, char b) {
                           return a == static_cast<std::uint8_t>(b);
                         }));

  const PrecomputedSession t = parse_session(via_bytes.data(),
                                             via_bytes.size());
  EXPECT_EQ(t.delta, s.delta);
  EXPECT_EQ(t.rounds.size(), s.rounds.size());
}

TEST(SessionIo, RejectsCorruptStreams) {
  EXPECT_THROW((void)load_session_file("/nonexistent/nope.bin"),
               std::runtime_error);

  std::stringstream bad_magic("NOTASESSIONxxxxxxxxxxxxxxxxx");
  EXPECT_THROW((void)load_session(bad_magic), std::runtime_error);

  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  std::stringstream buf;
  save_session(make_session(c, 1, 6), buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)load_session(truncated), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Hostile-input hardening: the spool reads session files off disk, so a
// loader facing mutated bytes must fail with a typed error — never
// crash, hang, or attempt a count-prefix-sized allocation.

// Parses arbitrary bytes; anything but success or std::runtime_error
// (SessionFormatError derives from it) escapes and fails the test —
// notably std::bad_alloc from an OOM-sized reserve.
void parse_must_not_crash(const std::vector<std::uint8_t>& bytes,
                          const char* what) {
  try {
    (void)parse_session(bytes.data(), bytes.size());
  } catch (const std::runtime_error&) {
    // Typed rejection: the acceptable failure mode.
  }
  SUCCEED() << what;
}

TEST(SessionIoFuzz, EveryTruncationFailsTyped) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  const std::vector<std::uint8_t> full =
      serialize_session(make_session(c, 1, 11));
  ASSERT_GT(full.size(), 64u);
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<long>(len));
    EXPECT_THROW((void)parse_session(cut.data(), cut.size()),
                 std::runtime_error)
        << "truncated to " << len << " bytes";
  }
}

TEST(SessionIoFuzz, SingleByteMutationsNeverCrash) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  const std::vector<std::uint8_t> full =
      serialize_session(make_session(c, 2, 12));
  // Every offset, three mutation patterns: bit flip, zero, all-ones.
  // Counts, magic, scheme, table rows and the packed bit tail all get
  // hit; the loader must return a session or throw runtime_error.
  for (std::size_t off = 0; off < full.size(); ++off) {
    for (const std::uint8_t m :
         {static_cast<std::uint8_t>(full[off] ^ 0x80),
          static_cast<std::uint8_t>(0x00), static_cast<std::uint8_t>(0xFF)}) {
      std::vector<std::uint8_t> mut = full;
      mut[off] = m;
      parse_must_not_crash(mut, "mutated byte");
    }
  }
}

TEST(SessionIoFuzz, RandomMultiByteMutationsNeverCrash) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const std::vector<std::uint8_t> full =
      serialize_session(make_session(c, 2, 13));
  const std::uint64_t fuzz_seed = test::sweep_seed(0xF0);
  SCOPED_TRACE("fuzz_seed=" + std::to_string(fuzz_seed));
  crypto::Prg prg(Block{fuzz_seed, 0x0D});
  const int n_trials = test::sweep_trials(400);
  for (int trial = 0; trial < n_trials; ++trial) {
    std::vector<std::uint8_t> mut = full;
    const int edits = 1 + static_cast<int>(prg.next_u64() % 8);
    for (int e = 0; e < edits; ++e) {
      const std::size_t off = prg.next_u64() % mut.size();
      mut[off] ^= static_cast<std::uint8_t>(prg.next_u64() | 1);
    }
    // Also sometimes truncate after mutating.
    if (trial % 3 == 0) mut.resize(prg.next_u64() % (mut.size() + 1));
    parse_must_not_crash(mut, "random mutation");
  }
}

TEST(SessionIoFuzz, HostileCountPrefixesRejectedBeforeAllocation) {
  // Hand-built header: magic, scheme, delta, then a lying round count.
  const auto header_with_round_count = [](std::uint64_t n_rounds) {
    std::vector<std::uint8_t> b;
    const char magic[8] = {'M', 'X', 'S', 'E', 'S', 'S', '1', '\0'};
    b.insert(b.end(), magic, magic + 8);
    b.push_back(0);                    // scheme = half-gates
    b.insert(b.end(), 16, 0x42);       // delta
    for (int i = 0; i < 8; ++i)
      b.push_back(static_cast<std::uint8_t>(n_rounds >> (8 * i)));
    return b;
  };

  // Counts beyond the cap are rejected by value, before any allocation.
  for (const std::uint64_t lie : {~std::uint64_t{0}, ~std::uint64_t{0} / 2,
                                  std::uint64_t{kMaxSessionRounds + 1}}) {
    const auto b = header_with_round_count(lie);
    EXPECT_THROW((void)parse_session(b.data(), b.size()), SessionFormatError)
        << "round count " << lie;
  }

  // A count at the cap passes validation but the stream ends
  // immediately: incremental growth means this fails fast on EOF
  // instead of reserving cap-many rounds up front.
  const auto at_cap = header_with_round_count(kMaxSessionRounds);
  EXPECT_THROW((void)parse_session(at_cap.data(), at_cap.size()),
               SessionFormatError);

  // Same discipline one level down: plausible round count, hostile
  // table count inside the round.
  auto nested = header_with_round_count(1);
  for (int i = 0; i < 8; ++i) nested.push_back(0xFF);  // table count ~0
  EXPECT_THROW((void)parse_session(nested.data(), nested.size()),
               SessionFormatError);
}

}  // namespace
}  // namespace maxel::proto
