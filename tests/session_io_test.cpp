// Session persistence: byte-exact round trips, a served-after-reload
// end-to-end run, and malformed-stream rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "proto/precompute.hpp"
#include "proto/protocol.hpp"
#include "proto/session_io.hpp"

namespace maxel::proto {
namespace {

using circuit::MacOptions;
using circuit::to_bits;
using crypto::Block;
using crypto::SystemRandom;

PrecomputedSession make_session(const circuit::Circuit& c, std::size_t rounds,
                                std::uint64_t seed) {
  GarblingBank bank(c, gc::Scheme::kHalfGates, rounds);
  SystemRandom rng(Block{seed, 0x10});
  bank.precompute(1, rng);
  return bank.take_session();
}

TEST(SessionIo, RoundTripIsExact) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const PrecomputedSession s = make_session(c, 4, 1);

  std::stringstream buf;
  save_session(s, buf);
  const PrecomputedSession t = load_session(buf);

  EXPECT_EQ(t.scheme, s.scheme);
  EXPECT_EQ(t.delta, s.delta);
  ASSERT_EQ(t.rounds.size(), s.rounds.size());
  for (std::size_t r = 0; r < s.rounds.size(); ++r) {
    EXPECT_EQ(t.rounds[r].tables.tables, s.rounds[r].tables.tables);
    EXPECT_EQ(t.rounds[r].garbler_labels0, s.rounds[r].garbler_labels0);
    EXPECT_EQ(t.rounds[r].evaluator_pairs, s.rounds[r].evaluator_pairs);
    EXPECT_EQ(t.rounds[r].fixed_labels, s.rounds[r].fixed_labels);
    EXPECT_EQ(t.rounds[r].output_map, s.rounds[r].output_map);
  }
  EXPECT_EQ(t.initial_state_labels, s.initial_state_labels);
}

TEST(SessionIo, ReloadedSessionServesCorrectly) {
  const MacOptions mac{8, 8, true};
  const circuit::Circuit c = circuit::make_mac_circuit(mac);
  std::stringstream buf;
  save_session(make_session(c, 5, 2), buf);
  PrecomputedSession reloaded = load_session(buf);

  auto [g_ch, e_ch] = MemoryChannel::create_pair();
  SystemRandom g_rng(Block{3, 1});
  SystemRandom e_rng(Block{3, 2});
  PrecomputedGarblerParty garbler(std::move(reloaded), *g_ch, g_rng);
  ProtocolOptions opt;
  opt.ot = OtMode::kBase;
  EvaluatorParty evaluator(c, opt, *e_ch, e_rng);

  crypto::Prg prg(Block{4, 4});
  std::uint64_t expect = 0;
  std::vector<bool> out;
  for (int r = 0; r < 5; ++r) {
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    expect = circuit::mac_reference(expect, a, x, mac);
    garbler.garble_and_send(to_bits(a, 8));
    evaluator.receive_and_choose(to_bits(x, 8));
    garbler.finish_ot();
    out = evaluator.evaluate_round();
  }
  EXPECT_EQ(circuit::from_bits(out), expect);
}

TEST(SessionIo, FileRoundTrip) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(8);
  const PrecomputedSession s = make_session(c, 1, 5);
  const std::string path = "/tmp/maxel_session_test.bin";
  save_session_file(s, path);
  const PrecomputedSession t = load_session_file(path);
  EXPECT_EQ(t.delta, s.delta);
  EXPECT_EQ(t.rounds.size(), 1u);
}

TEST(SessionIo, RejectsCorruptStreams) {
  EXPECT_THROW((void)load_session_file("/nonexistent/nope.bin"),
               std::runtime_error);

  std::stringstream bad_magic("NOTASESSIONxxxxxxxxxxxxxxxxx");
  EXPECT_THROW((void)load_session(bad_magic), std::runtime_error);

  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  std::stringstream buf;
  save_session(make_session(c, 1, 6), buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)load_session(truncated), std::runtime_error);
}

}  // namespace
}  // namespace maxel::proto
