// Montgomery workload family: the bit-serial REDC netlist vs the
// limb-vector REDC reference — two unrelated formulations of
// a*b*R^{-1} mod n that must agree bit-for-bit. The reference itself is
// pinned against naive __int128 modular arithmetic wherever the modulus
// fits one limb, closing the differential chain:
//   naive mod  ==  limb REDC  ==  bit-serial netlist (plain + garbled).
// Covers 64/128/256-bit operand widths, moduli hugging 2^k from below,
// small moduli far below 2^k, and the to_mont/from_mont/mul round-trip
// property sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/montgomery.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "sweep_env.hpp"

namespace maxel::circuit {
namespace {

using crypto::Prg;

Limbs random_below(Prg& prg, const Limbs& n, std::size_t bits) {
  // Rejection-sample < n; for tiny moduli fall back to folding mod n
  // limb-by-limb (n single-limb there by construction of the tests).
  for (int tries = 0; tries < 64; ++tries) {
    Limbs v(n.size(), 0);
    for (auto& limb : v) limb = prg.next_u64();
    const std::size_t top = bits % 64;
    if (top != 0) v.back() &= (std::uint64_t{1} << top) - 1;
    bool less = false;
    for (std::size_t i = v.size(); i-- > 0;) {
      if (v[i] != n[i]) {
        less = v[i] < n[i];
        break;
      }
    }
    if (less) return v;
  }
  // Tiny n: reduce one 64-bit draw (exact because n has one limb).
  Limbs v(n.size(), 0);
  v[0] = prg.next_u64() % n[0];
  return v;
}

std::uint64_t limb0(const Limbs& v) { return v.empty() ? 0 : v[0]; }

// ---- reference vs naive (single-limb moduli) ----------------------------

TEST(MontgomeryRef, MatchesNaiveModularArithmetic) {
  const std::uint64_t seed = test::sweep_seed(0x40A7600Dull);
  SCOPED_TRACE("MAXEL_SWEEP_SEED=" + std::to_string(seed));
  Prg prg(crypto::Block{seed, 0x01});
  const std::uint64_t moduli[] = {3,          5,         0xFFF1,
                                  0x10001,    (1ull << 61) - 1,
                                  ~0ull,      ~0ull - 4};  // both odd
  for (const std::uint64_t n64 : moduli) {
    const MontgomeryRef ref(Limbs{n64}, 64);
    const int trials = test::sweep_trials(50);
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t a = prg.next_u64() % n64;
      const std::uint64_t b = prg.next_u64() % n64;
      const auto naive = static_cast<std::uint64_t>(
          static_cast<unsigned __int128>(a) * b % n64);
      EXPECT_EQ(limb0(ref.mul_mod(Limbs{a}, Limbs{b})), naive)
          << "n=" << n64 << " a=" << a << " b=" << b;
      // Round trip through the Montgomery domain is the identity.
      EXPECT_EQ(limb0(ref.from_mont(ref.to_mont(Limbs{a}))), a);
    }
  }
}

TEST(MontgomeryRef, NPrimeInvariant) {
  // n * n' == -1 mod 2^k is the defining REDC identity; check it at
  // every width the netlists use (low limb suffices as a smoke check,
  // the constructor asserts the full product internally).
  for (const std::size_t bits : {16u, 64u, 128u, 256u}) {
    Limbs n((bits + 63) / 64, ~0ull);
    const std::size_t top = bits % 64;
    if (top != 0) n.back() &= (std::uint64_t{1} << top) - 1;  // n = 2^k - 1
    const MontgomeryRef ref(n, bits);
    const Limbs& np = ref.n_prime();
    const std::uint64_t mask =
        bits >= 64 ? ~0ull : (std::uint64_t{1} << bits) - 1;
    EXPECT_EQ((limb0(np) * limb0(n)) & mask, mask)
        << "low bits of n*n' must be all-ones at bits=" << bits;
  }
}

// ---- netlist vs reference -----------------------------------------------

struct WidthCase {
  std::size_t bits;
  std::vector<std::uint64_t> modulus;
  const char* tag;
};

std::vector<WidthCase> width_cases() {
  return {
      // Modulus-near-2^k: acc hugs the top of the k+2-bit register.
      {64, {~0ull}, "64/near2k"},
      {64, {0xFFFFFFFFFFFFFFC5ull}, "64/largest-odd-ish"},
      // Small modulus: REDC digits almost always fire.
      {64, {0xFFF1}, "64/small"},
      {128, {~0ull, ~0ull}, "128/near2k"},
      {128, {0x10001, 0}, "128/small"},
      {256, {~0ull, ~0ull, ~0ull, ~0ull}, "256/near2k"},
      {256, {0xFFFFFFFBull, 0, 0, 0}, "256/small"},
  };
}

TEST(MontgomeryCircuit, PlainEvalMatchesLimbReference) {
  const std::uint64_t seed = test::sweep_seed(0x6F2EDCull);
  SCOPED_TRACE("MAXEL_SWEEP_SEED=" + std::to_string(seed));
  Prg prg(crypto::Block{seed, 0x02});
  for (const auto& wc : width_cases()) {
    SCOPED_TRACE(wc.tag);
    const MontgomeryRef ref(wc.modulus, wc.bits);
    const Circuit c = make_montgomery_mul_circuit({wc.bits, wc.modulus});
    ASSERT_EQ(c.outputs.size(), wc.bits);
    const int trials = test::sweep_trials(wc.bits >= 256 ? 4 : 10);
    for (int t = 0; t < trials; ++t) {
      const Limbs a = random_below(prg, ref.modulus(), wc.bits);
      const Limbs b = random_below(prg, ref.modulus(), wc.bits);
      const auto out = eval_plain(c, limbs_to_bits(a, wc.bits),
                                  limbs_to_bits(b, wc.bits));
      EXPECT_EQ(limbs_from_bits(out), ref.mont_mul(a, b)) << "t=" << t;
    }
    // Identity elements: mont_mul(a, R mod n) = a, mont_mul(a, 1) =
    // a R^{-1} — both must match the reference too.
    const Limbs a = random_below(prg, ref.modulus(), wc.bits);
    const auto out = eval_plain(c, limbs_to_bits(a, wc.bits),
                                limbs_to_bits(ref.r_mod_n(), wc.bits));
    EXPECT_EQ(limbs_from_bits(out), ref.mont_mul(a, ref.r_mod_n()));
    EXPECT_EQ(limbs_from_bits(out), a) << "a * R * R^-1 must be a";
  }
}

TEST(MontgomeryCircuit, RoundTripPropertySweep) {
  // from_mont(circuit(to_mont(a), to_mont(b))) == a*b mod n: the
  // netlist computes the middle hop of the standard Montgomery-domain
  // multiply; conversions use the limb reference.
  const std::uint64_t seed = test::sweep_seed(0x707D12ull);
  SCOPED_TRACE("MAXEL_SWEEP_SEED=" + std::to_string(seed));
  Prg prg(crypto::Block{seed, 0x03});
  const std::size_t bits = 64;
  const Limbs n{0xFFFFFFFFFFFFFFC5ull};
  const MontgomeryRef ref(n, bits);
  const Circuit c = make_montgomery_mul_circuit({bits, n});
  const int trials = test::sweep_trials(25);
  for (int t = 0; t < trials; ++t) {
    const Limbs a = random_below(prg, n, bits);
    const Limbs b = random_below(prg, n, bits);
    const auto mid = eval_plain(c, limbs_to_bits(ref.to_mont(a), bits),
                                limbs_to_bits(ref.to_mont(b), bits));
    const Limbs prod = ref.from_mont(limbs_from_bits(mid));
    EXPECT_EQ(prod, ref.mul_mod(a, b)) << "t=" << t;
    const auto naive = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(limb0(a)) * limb0(b) % limb0(n));
    EXPECT_EQ(limb0(prod), naive);
  }
}

TEST(MontgomeryCircuit, GarbledMatchesReference) {
  // Real garbled evaluation at 64 and 128 bits (256-bit rides the
  // four-mode session tests in schedule_equivalence_test).
  crypto::SystemRandom rng(crypto::Block{0x6D, 0x4E});
  Prg prg(crypto::Block{0x6F, 0x04});
  for (const auto& wc : width_cases()) {
    if (wc.bits > 128) continue;
    SCOPED_TRACE(wc.tag);
    const MontgomeryRef ref(wc.modulus, wc.bits);
    const Circuit c = make_montgomery_mul_circuit({wc.bits, wc.modulus});
    for (int t = 0; t < 3; ++t) {
      const Limbs a = random_below(prg, ref.modulus(), wc.bits);
      const Limbs b = random_below(prg, ref.modulus(), wc.bits);
      const auto got =
          gc::garble_and_evaluate(c, gc::Scheme::kHalfGates,
                                  limbs_to_bits(a, wc.bits),
                                  limbs_to_bits(b, wc.bits), rng);
      EXPECT_EQ(limbs_from_bits(got), ref.mont_mul(a, b)) << "t=" << t;
    }
  }
}

TEST(MontgomeryCircuit, GateCountsScaleQuadratically) {
  // Two k+2-bit adds per bit step => ~2k^2 ANDs; the 256-bit instance
  // is the widest netlist in the zoo and must stay in that envelope.
  const auto ands = [](std::size_t k) {
    std::vector<std::uint64_t> n((k + 63) / 64, ~0ull);
    return make_montgomery_mul_circuit({k, n}).and_count();
  };
  const std::size_t a64 = ands(64), a128 = ands(128), a256 = ands(256);
  EXPECT_GT(a128, 3 * a64);
  EXPECT_LT(a128, 5 * a64);
  EXPECT_GT(a256, 3 * a128);
  EXPECT_LT(a256, 5 * a128);
  EXPECT_LT(a256, 300000u);
}

}  // namespace
}  // namespace maxel::circuit
