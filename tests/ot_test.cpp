// Oblivious-transfer tests: Fp127 field algebra, base OT correctness and
// obliviousness structure, IKNP extension over multiple batches, and
// channel traffic accounting.
#include <gtest/gtest.h>

#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "ot/base_ot.hpp"
#include "ot/field.hpp"
#include "ot/iknp.hpp"
#include "ot/precomputed_ot.hpp"
#include "proto/channel.hpp"

#include <chrono>

// Sanitizer instrumentation skews the CPU-time ratios the timing
// assertions below compare; keep the protocol runs (memory/UB coverage)
// but skip the wall-clock comparisons under asan/tsan.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MAXEL_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MAXEL_UNDER_SANITIZER 1
#endif
#endif

namespace maxel::ot {
namespace {

using crypto::Block;
using crypto::SystemRandom;
using proto::MemoryChannel;

TEST(Fp127, ReduceCanonical) {
  EXPECT_EQ(Fp127::reduce(Fp127::p()), 0u);
  EXPECT_EQ(Fp127::reduce(Fp127::p() + 5), 5u);
  EXPECT_EQ(Fp127::reduce(0), 0u);
}

TEST(Fp127, MulSmallValues) {
  EXPECT_EQ(Fp127::mul(7, 9), 63u);
  EXPECT_EQ(Fp127::mul(Fp127::p() - 1, 1), Fp127::p() - 1);
}

TEST(Fp127, MulMatchesFermat) {
  // a^(p-1) == 1 for a != 0 (Fermat) — exercises mul across the range.
  SystemRandom rng(Block{1, 1});
  for (int i = 0; i < 8; ++i) {
    const Fp127::u128 a = Fp127::random_element(rng);
    EXPECT_EQ(Fp127::pow(a, Fp127::p() - 1), 1u);
  }
}

TEST(Fp127, MulAssociativeAndCommutative) {
  SystemRandom rng(Block{2, 2});
  for (int i = 0; i < 32; ++i) {
    const auto a = Fp127::random_element(rng);
    const auto b = Fp127::random_element(rng);
    const auto c = Fp127::random_element(rng);
    EXPECT_EQ(Fp127::mul(a, b), Fp127::mul(b, a));
    EXPECT_EQ(Fp127::mul(Fp127::mul(a, b), c), Fp127::mul(a, Fp127::mul(b, c)));
  }
}

TEST(Fp127, InverseIsInverse) {
  SystemRandom rng(Block{3, 3});
  for (int i = 0; i < 16; ++i) {
    const auto a = Fp127::random_element(rng);
    EXPECT_EQ(Fp127::mul(a, Fp127::inv(a)), 1u);
  }
}

TEST(Fp127, PowLaws) {
  const auto g = Fp127::generator();
  // g^(a+b) == g^a * g^b — the DH identity base OT relies on.
  EXPECT_EQ(Fp127::pow(g, 12345 + 67890),
            Fp127::mul(Fp127::pow(g, 12345), Fp127::pow(g, 67890)));
}

TEST(Fp127, BlockRoundTrip) {
  SystemRandom rng(Block{4, 4});
  for (int i = 0; i < 16; ++i) {
    const auto a = Fp127::random_element(rng);
    EXPECT_EQ(Fp127::from_block(Fp127::to_block(a)), a);
  }
}

std::vector<std::pair<Block, Block>> random_pairs(std::size_t n,
                                                  crypto::RandomSource& rng) {
  std::vector<std::pair<Block, Block>> m(n);
  for (auto& [a, b] : m) {
    a = rng.next_block();
    b = rng.next_block();
  }
  return m;
}

std::vector<bool> random_choices(std::size_t n, std::uint64_t seed) {
  crypto::Prg prg(Block{seed, 0});
  return prg.bits(n);
}

TEST(BaseOt, ReceiverGetsChosenMessageOnly) {
  auto [s_ch, r_ch] = MemoryChannel::create_pair();
  SystemRandom s_rng(Block{10, 1});
  SystemRandom r_rng(Block{10, 2});
  BaseOtSender sender(*s_ch, s_rng);
  BaseOtReceiver receiver(*r_ch, r_rng);

  const std::size_t n = 32;
  const auto msgs = random_pairs(n, s_rng);
  const auto choices = random_choices(n, 7);
  const auto out = run_ot(sender, receiver, msgs, choices);

  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const Block expect = choices[i] ? msgs[i].second : msgs[i].first;
    const Block other = choices[i] ? msgs[i].first : msgs[i].second;
    EXPECT_EQ(out[i], expect);
    EXPECT_NE(out[i], other);
  }
}

TEST(BaseOt, MessageCountMismatchThrows) {
  auto [s_ch, r_ch] = MemoryChannel::create_pair();
  SystemRandom rng(Block{11, 1});
  BaseOtSender sender(*s_ch, rng);
  sender.send_phase1(4);
  const auto msgs = random_pairs(3, rng);
  EXPECT_THROW(sender.send_phase2(msgs), std::invalid_argument);
}

TEST(Iknp, SetupRequiredBeforeExtension) {
  auto [s_ch, r_ch] = MemoryChannel::create_pair();
  SystemRandom rng(Block{12, 1});
  IknpSender sender(*s_ch, rng);
  EXPECT_THROW(sender.send_phase1(8), std::logic_error);
}

TEST(Iknp, ExtensionCorrectness) {
  auto [s_ch, r_ch] = MemoryChannel::create_pair();
  SystemRandom s_rng(Block{13, 1});
  SystemRandom r_rng(Block{13, 2});
  IknpSender sender(*s_ch, s_rng);
  IknpReceiver receiver(*r_ch, r_rng);
  iknp_setup(sender, receiver);

  const std::size_t n = 500;
  const auto msgs = random_pairs(n, s_rng);
  const auto choices = random_choices(n, 99);
  const auto out = run_ot(sender, receiver, msgs, choices);

  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(out[i], choices[i] ? msgs[i].second : msgs[i].first);
}

TEST(Iknp, MultipleBatchesStayCorrect) {
  auto [s_ch, r_ch] = MemoryChannel::create_pair();
  SystemRandom s_rng(Block{14, 1});
  SystemRandom r_rng(Block{14, 2});
  IknpSender sender(*s_ch, s_rng);
  IknpReceiver receiver(*r_ch, r_rng);
  iknp_setup(sender, receiver);

  for (int batch = 0; batch < 5; ++batch) {
    const std::size_t n = 64 + static_cast<std::size_t>(batch) * 13;
    const auto msgs = random_pairs(n, s_rng);
    const auto choices =
        random_choices(n, 100 + static_cast<std::uint64_t>(batch));
    const auto out = run_ot(sender, receiver, msgs, choices);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out[i], choices[i] ? msgs[i].second : msgs[i].first)
          << "batch " << batch << " index " << i;
  }
}

TEST(Iknp, ExtensionBeatsBaseOtOnPublicKeyWork) {
  // The point of OT extension: O(k) public-key operations instead of
  // O(n). With n >> k the base-OT run must burn far more wall-clock on
  // exponentiations than the whole extension batch (which is symmetric
  // crypto only). Margin is ~100x in practice; assert a conservative 2x.
  const std::size_t n = 2048;

  auto [bs_ch, br_ch] = MemoryChannel::create_pair();
  SystemRandom rng1(Block{15, 1});
  SystemRandom rng2(Block{15, 2});
  BaseOtSender bsender(*bs_ch, rng1);
  BaseOtReceiver breceiver(*br_ch, rng2);
  const auto t0 = std::chrono::steady_clock::now();
  (void)run_ot(bsender, breceiver, random_pairs(n, rng1),
               random_choices(n, 1));
  const auto t1 = std::chrono::steady_clock::now();

  auto [is_ch, ir_ch] = MemoryChannel::create_pair();
  SystemRandom rng3(Block{15, 3});
  SystemRandom rng4(Block{15, 4});
  IknpSender isender(*is_ch, rng3);
  IknpReceiver ireceiver(*ir_ch, rng4);
  iknp_setup(isender, ireceiver);
  const auto t2 = std::chrono::steady_clock::now();
  (void)run_ot(isender, ireceiver, random_pairs(n, rng3),
               random_choices(n, 2));
  const auto t3 = std::chrono::steady_clock::now();

  const auto base_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  const auto iknp_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t3 - t2).count();
  EXPECT_GT(base_us, 2 * iknp_us)
      << "base=" << base_us << "us iknp=" << iknp_us << "us";
}

TEST(Iknp, PerOtMarginalTrafficIsConstant) {
  // Marginal extension traffic per OT: 128 bits of u-column + two
  // 16-byte ciphertexts (+ per-column length headers). It must not grow
  // with batch size.
  auto [is_ch, ir_ch] = MemoryChannel::create_pair();
  SystemRandom rng3(Block{15, 5});
  SystemRandom rng4(Block{15, 6});
  IknpSender isender(*is_ch, rng3);
  IknpReceiver ireceiver(*ir_ch, rng4);
  iknp_setup(isender, ireceiver);
  is_ch->reset_counters();
  ir_ch->reset_counters();

  const std::size_t n1 = 512;
  (void)run_ot(isender, ireceiver, random_pairs(n1, rng3),
               random_choices(n1, 2));
  const std::uint64_t traffic1 = is_ch->bytes_sent() + ir_ch->bytes_sent();

  const std::size_t n2 = 4096;
  (void)run_ot(isender, ireceiver, random_pairs(n2, rng3),
               random_choices(n2, 3));
  const std::uint64_t traffic2 =
      is_ch->bytes_sent() + ir_ch->bytes_sent() - traffic1;

  const double per_ot1 = static_cast<double>(traffic1) / n1;
  const double per_ot2 = static_cast<double>(traffic2) / n2;
  EXPECT_NEAR(per_ot1, per_ot2, per_ot1 * 0.2);
  EXPECT_LT(per_ot2, 64.0);  // 48 bytes payload + header amortization
}


TEST(PrecomputedOt, OnlinePhaseIsCorrect) {
  // Offline over base OT, online via Beaver derandomization.
  auto [os_ch, or_ch] = MemoryChannel::create_pair();
  SystemRandom s_rng(Block{30, 1});
  SystemRandom r_rng(Block{30, 2});
  BaseOtSender base_s(*os_ch, s_rng);
  BaseOtReceiver base_r(*or_ch, r_rng);
  const std::size_t n = 96;
  const OtPool pool = precompute_ot_pool(base_s, base_r, n, s_rng, r_rng);

  // Offline self-consistency: receiver got r_c.
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(pool.received[i], pool.choices[i] ? pool.sender_pairs[i].second
                                                : pool.sender_pairs[i].first);

  auto [s_ch, r_ch] = MemoryChannel::create_pair();
  PrecomputedOtSender sender(*s_ch, pool.sender_pairs);
  PrecomputedOtReceiver receiver(*r_ch, pool.choices, pool.received);

  const auto msgs = random_pairs(n / 2, s_rng);
  const auto choices = random_choices(n / 2, 31);
  const auto out = run_ot(sender, receiver, msgs, choices);
  for (std::size_t i = 0; i < msgs.size(); ++i)
    EXPECT_EQ(out[i], choices[i] ? msgs[i].second : msgs[i].first);

  // Second batch from the same pool.
  const auto msgs2 = random_pairs(n / 2, s_rng);
  const auto choices2 = random_choices(n / 2, 32);
  const auto out2 = run_ot(sender, receiver, msgs2, choices2);
  for (std::size_t i = 0; i < msgs2.size(); ++i)
    EXPECT_EQ(out2[i], choices2[i] ? msgs2[i].second : msgs2[i].first);
  EXPECT_EQ(sender.remaining(), 0u);
}

TEST(PrecomputedOt, PoolExhaustionDetected) {
  auto [s_ch, r_ch] = MemoryChannel::create_pair();
  SystemRandom rng(Block{33, 1});
  std::vector<std::pair<Block, Block>> pairs(4);
  for (auto& [a, b] : pairs) {
    a = rng.next_block();
    b = rng.next_block();
  }
  PrecomputedOtSender sender(*s_ch, pairs);
  EXPECT_THROW(sender.send_phase1(5), std::runtime_error);
  PrecomputedOtReceiver receiver(*r_ch, std::vector<bool>(4, false),
                                 std::vector<Block>(4));
  EXPECT_THROW(receiver.recv_phase1(std::vector<bool>(5, false)),
               std::runtime_error);
}

TEST(PrecomputedOt, OnlineTrafficIsMinimal) {
  // Online cost: n bits of derandomization + 2n blocks of ciphertext —
  // no group elements, no PRG expansion.
  auto [os_ch, or_ch] = MemoryChannel::create_pair();
  SystemRandom s_rng(Block{34, 1});
  SystemRandom r_rng(Block{34, 2});
  BaseOtSender base_s(*os_ch, s_rng);
  BaseOtReceiver base_r(*or_ch, r_rng);
  const std::size_t n = 64;
  const OtPool pool = precompute_ot_pool(base_s, base_r, n, s_rng, r_rng);

  auto [s_ch, r_ch] = MemoryChannel::create_pair();
  PrecomputedOtSender sender(*s_ch, pool.sender_pairs);
  PrecomputedOtReceiver receiver(*r_ch, pool.choices, pool.received);
  (void)run_ot(sender, receiver, random_pairs(n, s_rng),
               random_choices(n, 35));
  const std::uint64_t online =
      s_ch->bytes_sent() + r_ch->bytes_sent();
  EXPECT_LE(online, 8 + n / 8 + 32 * n + 16);
  // Bytes: online is below even our (byte-cheap, 127-bit) base OT's
  // traffic; the real win is compute, so also check wall-clock.
  const std::uint64_t offline = os_ch->bytes_sent() + or_ch->bytes_sent();
  EXPECT_LT(online, offline);

  const auto t0 = std::chrono::steady_clock::now();
  auto [s2_ch, r2_ch] = MemoryChannel::create_pair();
  PrecomputedOtSender sender2(*s2_ch, pool.sender_pairs);
  PrecomputedOtReceiver receiver2(*r2_ch, pool.choices, pool.received);
  (void)run_ot(sender2, receiver2, random_pairs(n, s_rng),
               random_choices(n, 36));
  const auto online_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  auto [os2_ch, or2_ch] = MemoryChannel::create_pair();
  BaseOtSender base_s2(*os2_ch, s_rng);
  BaseOtReceiver base_r2(*or2_ch, r_rng);
  const auto t1 = std::chrono::steady_clock::now();
  (void)run_ot(base_s2, base_r2, random_pairs(n, s_rng),
               random_choices(n, 37));
  const auto base_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t1)
                           .count();
#ifndef MAXEL_UNDER_SANITIZER
  EXPECT_GT(base_us, 5 * online_us)
      << "base=" << base_us << "us online=" << online_us << "us";
#else
  (void)base_us;
  (void)online_us;
#endif
}

TEST(TrustedOt, ShortcutDeliversChosen) {
  TrustedOtPair pair;
  auto sender = pair.sender();
  auto receiver = pair.receiver();
  SystemRandom rng(Block{16, 1});
  const auto msgs = random_pairs(8, rng);
  const auto choices = random_choices(8, 3);
  const auto out = run_ot(sender, receiver, msgs, choices);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(out[i], choices[i] ? msgs[i].second : msgs[i].first);
}

TEST(Channel, CountsBytesBothWays) {
  auto [a, b] = MemoryChannel::create_pair();
  a->send_u64(7);
  EXPECT_EQ(b->recv_u64(), 7u);
  b->send_block(Block{1, 2});
  EXPECT_EQ(a->recv_block(), (Block{1, 2}));
  EXPECT_EQ(a->bytes_sent(), 8u);
  EXPECT_EQ(a->bytes_received(), 16u);
  EXPECT_EQ(b->bytes_received(), 8u);
  EXPECT_EQ(b->bytes_sent(), 16u);
}

TEST(Channel, RecvBeforeSendThrows) {
  auto [a, b] = MemoryChannel::create_pair();
  EXPECT_THROW((void)a->recv_u64(), std::runtime_error);
}

TEST(Channel, BitsRoundTrip) {
  auto [a, b] = MemoryChannel::create_pair();
  const std::vector<bool> bits = {true, false, true, true, false,
                                  false, true, false, true};
  a->send_bits(bits);
  EXPECT_EQ(b->recv_bits(), bits);
}

}  // namespace
}  // namespace maxel::ot
