// FP16 workload family: the binary16 add/mul/MAC netlists are proven
// bit-true against the softfloat golden reference by differential
// testing — a structured operand grid (every exponent x boundary
// mantissas x both signs, so all subnormal/normal/inf/NaN regions and
// their seams are hit) and pinned-seed randomized sweeps, every case
// executed through REAL garbled evaluation (half-gates, fresh labels
// each round) and decoded bit-for-bit. The reference itself is pinned
// against an independent double-precision model: a double holds any
// fp16 sum or product exactly, so double-compute + single RNE
// conversion must agree with the softfloat result everywhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/fp16.hpp"
#include "circuit/fp16_ref.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "sweep_env.hpp"

namespace maxel::circuit {
namespace {

using crypto::Prg;

// The structured operand grid: all 32 exponents x mantissas
// {0 (power of two / zero / inf), 1 (min fraction), 0x3FF (max
// fraction)} x both signs. Contains +-0, min/max subnormal, 1.0, max
// finite, +-inf and two NaN encodings.
std::vector<std::uint16_t> structured_grid() {
  std::vector<std::uint16_t> v;
  for (unsigned e = 0; e < 32; ++e)
    for (unsigned f : {0x000u, 0x001u, 0x3FFu})
      v.push_back(static_cast<std::uint16_t>((e << 10) | f));
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(static_cast<std::uint16_t>(v[i] | 0x8000u));
  return v;  // 192 operands, 36864 ordered pairs
}

// Independent model: compute in double (exact for fp16 add/mul), then
// one RNE conversion. Signed zeros and NaNs fall out of IEEE double
// semantics. Used to cross-pin the softfloat reference itself.
std::uint16_t double_model_add(std::uint16_t a, std::uint16_t b) {
  return fp16_from_double(fp16_to_double(a) + fp16_to_double(b));
}
std::uint16_t double_model_mul(std::uint16_t a, std::uint16_t b) {
  return fp16_from_double(fp16_to_double(a) * fp16_to_double(b));
}

// Amortized garbled executor: one garbler/evaluator pair per circuit,
// fresh labels every round (garble_round_material), decode through the
// published color map — the full protocol path minus the socket.
class GarbledFp16 {
 public:
  explicit GarbledFp16(const Circuit& c)
      : circ_(c),
        rng_(crypto::Block{0xF9, 0x16}),
        garbler_(circ_, gc::Scheme::kHalfGates, rng_),
        evaluator_(circ_, gc::Scheme::kHalfGates) {}

  std::uint16_t round(std::uint16_t a, std::uint16_t x) {
    const gc::RoundMaterial m = garbler_.garble_round_material();
    // State labels exist only once round 0 is garbled.
    if (!circ_.dffs.empty() && garbler_.rounds_garbled() == 1)
      evaluator_.set_initial_state_labels(garbler_.initial_state_labels());
    std::vector<gc::Block> ga(16), ex(16);
    for (std::size_t i = 0; i < 16; ++i) {
      ga[i] = garbler_.garbler_input_label(i, ((a >> i) & 1u) != 0);
      ex[i] = ((x >> i) & 1u) != 0 ? m.evaluator_pairs[i].second
                                   : m.evaluator_pairs[i].first;
    }
    const auto active = evaluator_.eval_round(m.tables, ga, ex, m.fixed_labels);
    const auto bits = gc::decode_with_map(active, m.output_map);
    return static_cast<std::uint16_t>(from_bits(bits));
  }

 private:
  const Circuit& circ_;
  crypto::SystemRandom rng_;
  gc::CircuitGarbler garbler_;
  gc::CircuitEvaluator evaluator_;
};

TEST(Fp16Reference, AgreesWithDoubleModelOnGrid) {
  const auto grid = structured_grid();
  for (const std::uint16_t a : grid) {
    for (const std::uint16_t b : grid) {
      ASSERT_EQ(fp16_add_reference(a, b), double_model_add(a, b))
          << std::hex << "add a=0x" << a << " b=0x" << b;
      ASSERT_EQ(fp16_mul_reference(a, b), double_model_mul(a, b))
          << std::hex << "mul a=0x" << a << " b=0x" << b;
    }
  }
}

TEST(Fp16Reference, KnownValues) {
  const std::uint16_t one = 0x3C00, two = 0x4000, half = 0x3800;
  EXPECT_EQ(fp16_add_reference(one, one), two);
  EXPECT_EQ(fp16_mul_reference(half, two), one);
  // Smallest subnormal halves to zero (ties-to-even), doubles exactly.
  EXPECT_EQ(fp16_mul_reference(0x0001, half), 0x0000);
  EXPECT_EQ(fp16_mul_reference(0x0001, two), 0x0002);
  // Max finite + 1 ulp-ish overflows to inf; inf - inf is NaN.
  EXPECT_EQ(fp16_add_reference(0x7BFF, 0x7BFF), kFp16Inf);
  EXPECT_EQ(fp16_add_reference(kFp16Inf, 0xFC00), kFp16QuietNan);
  // 0 * inf is NaN; NaN is canonical regardless of input payload.
  EXPECT_EQ(fp16_mul_reference(0x0000, kFp16Inf), kFp16QuietNan);
  EXPECT_EQ(fp16_add_reference(0x7E01, one), kFp16QuietNan);
  // Signed zero rules: (-0) + (-0) = -0, (+0) + (-0) = +0, (-1)*0 = -0.
  EXPECT_EQ(fp16_add_reference(0x8000, 0x8000), 0x8000);
  EXPECT_EQ(fp16_add_reference(0x0000, 0x8000), 0x0000);
  EXPECT_EQ(fp16_mul_reference(0xBC00, 0x0000), 0x8000);
}

// The tentpole claim: garbled evaluation of the netlists decodes to the
// exact softfloat bit pattern on the full structured grid.
TEST(Fp16Garbled, AddMatchesReferenceOnGrid) {
  const Circuit c = make_fp16_add_circuit();
  GarbledFp16 sess(c);
  const auto grid = structured_grid();
  for (const std::uint16_t a : grid)
    for (const std::uint16_t b : grid)
      ASSERT_EQ(sess.round(a, b), fp16_add_reference(a, b))
          << std::hex << "a=0x" << a << " b=0x" << b;
}

TEST(Fp16Garbled, MulMatchesReferenceOnGrid) {
  const Circuit c = make_fp16_mul_circuit();
  GarbledFp16 sess(c);
  const auto grid = structured_grid();
  for (const std::uint16_t a : grid)
    for (const std::uint16_t b : grid)
      ASSERT_EQ(sess.round(a, b), fp16_mul_reference(a, b))
          << std::hex << "a=0x" << a << " b=0x" << b;
}

// Pinned-seed randomized sweep (>= 10k pairs at tier-1 scale, 20x under
// the nightly MAXEL_SWEEP_SCALE), every pair through garbled add AND
// mul. Biased toward boundary exponents so the subnormal and overflow
// seams keep getting hit.
TEST(Fp16Garbled, RandomizedSweep) {
  const std::uint64_t seed = test::sweep_seed(0xF16DF16Dull);
  SCOPED_TRACE("MAXEL_SWEEP_SEED=" + std::to_string(seed));
  Prg prg(crypto::Block{seed, 0x16});
  const Circuit add_c = make_fp16_add_circuit();
  const Circuit mul_c = make_fp16_mul_circuit();
  GarbledFp16 add_sess(add_c);
  GarbledFp16 mul_sess(mul_c);
  const int trials = test::sweep_trials(5200);  // >= 10.4k pairs of ops
  for (int t = 0; t < trials; ++t) {
    std::uint16_t a = static_cast<std::uint16_t>(prg.next_u64());
    std::uint16_t b = static_cast<std::uint16_t>(prg.next_u64());
    if (t % 5 == 0) a = (a & 0x83FFu) | (t % 10 == 0 ? 0x0000u : 0x7800u);
    if (t % 7 == 0) b = (b & 0x83FFu) | (t % 14 == 0 ? 0x0400u : 0x7C00u);
    ASSERT_EQ(add_sess.round(a, b), fp16_add_reference(a, b))
        << std::hex << "add a=0x" << a << " b=0x" << b;
    ASSERT_EQ(mul_sess.round(a, b), fp16_mul_reference(a, b))
        << std::hex << "mul a=0x" << a << " b=0x" << b;
    ASSERT_EQ(fp16_add_reference(a, b), double_model_add(a, b));
    ASSERT_EQ(fp16_mul_reference(a, b), double_model_mul(a, b));
  }
}

// Sequential MAC: the DFF accumulator carries garbled state across
// rounds; each round must decode to the two-rounding reference chain.
TEST(Fp16Garbled, SequentialMacCarriesState) {
  const Circuit c = make_fp16_mac_circuit();
  ASSERT_EQ(c.dffs.size(), 16u);
  std::optional<GarbledFp16> sess(std::in_place, c);
  const std::uint64_t seed = test::sweep_seed(0xACCF16ull);
  SCOPED_TRACE("MAXEL_SWEEP_SEED=" + std::to_string(seed));
  Prg prg(crypto::Block{seed, 0xAC});
  std::uint16_t acc = 0;
  const int rounds = test::sweep_trials(300);
  for (int r = 0; r < rounds; ++r) {
    // Small-exponent operands so the accumulator random-walks through
    // subnormal/normal space instead of saturating at inf immediately;
    // every 16th round throws a special at it.
    std::uint16_t a = static_cast<std::uint16_t>(prg.next_u64()) & 0xB3FFu;
    std::uint16_t x = static_cast<std::uint16_t>(prg.next_u64()) & 0xB3FFu;
    if (r % 16 == 15) a = (r % 32 == 31) ? kFp16Inf : 0x0000;
    acc = fp16_mac_reference(acc, a, x);
    ASSERT_EQ(sess->round(a, x), acc)
        << std::hex << "round " << r << " a=0x" << a << " x=0x" << x;
    if (fp16_is_nan(acc) || fp16_is_inf(acc)) {
      // Re-arm the walk: NaN/inf absorb everything after them, which
      // would make the rest of the sweep vacuous. A fresh garbled
      // session restarts the accumulator at +0.
      sess.emplace(c);
      acc = 0;
    }
  }
}

TEST(Fp16Netlists, PlainEvalMatchesGarbledPath) {
  // eval_plain must agree too (the four-mode session tests lean on it).
  const Circuit add_c = make_fp16_add_circuit();
  const Circuit mul_c = make_fp16_mul_circuit();
  Prg prg(crypto::Block{7, 61});
  for (int t = 0; t < 500; ++t) {
    const auto a = static_cast<std::uint16_t>(prg.next_u64());
    const auto b = static_cast<std::uint16_t>(prg.next_u64());
    EXPECT_EQ(from_bits(eval_plain(add_c, to_bits(a, 16), to_bits(b, 16))),
              fp16_add_reference(a, b));
    EXPECT_EQ(from_bits(eval_plain(mul_c, to_bits(a, 16), to_bits(b, 16))),
              fp16_mul_reference(a, b));
  }
}

TEST(Fp16Netlists, GateCounts) {
  // The FP16 datapath pays for alignment/normalize barrel shifters the
  // integer MAC doesn't have; pin the magnitude so regressions in the
  // builder's folding show up (numbers quoted in docs/ACCELERATION.md).
  const Circuit add_c = make_fp16_add_circuit();
  const Circuit mul_c = make_fp16_mul_circuit();
  const Circuit mac_c = make_fp16_mac_circuit();
  EXPECT_GT(add_c.and_count(), 400u);
  EXPECT_LT(add_c.and_count(), 2500u);
  EXPECT_GT(mul_c.and_count(), 300u);
  EXPECT_LT(mul_c.and_count(), 2000u);
  EXPECT_LE(mac_c.and_count(), add_c.and_count() + mul_c.and_count() + 64);
}

}  // namespace
}  // namespace maxel::circuit
