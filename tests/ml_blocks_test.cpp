// ML nonlinearity blocks: signed comparison, ReLU, max, argmax —
// exhaustive at small widths, random at full width, and garbled
// end-to-end.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/ml_blocks.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"

namespace maxel::circuit {
namespace {

using crypto::Prg;

std::int64_t as_signed(std::uint64_t v, std::size_t w) {
  return from_bits_signed(to_bits(v, w));
}

TEST(LtSigned, ExhaustiveAt4Bits) {
  Builder bld;
  const Bus a = bld.garbler_inputs(4);
  const Bus b = bld.evaluator_inputs(4);
  bld.set_outputs({lt_signed(bld, a, b)});
  const Circuit c = bld.take();
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      const bool expect = as_signed(x, 4) < as_signed(y, 4);
      EXPECT_EQ(eval_plain(c, to_bits(x, 4), to_bits(y, 4))[0], expect)
          << x << " vs " << y;
    }
  }
}

TEST(Relu, ExhaustiveAt5Bits) {
  Builder bld;
  const Bus v = bld.evaluator_inputs(5);
  bld.set_outputs(relu(bld, v));
  const Circuit c = bld.take();
  EXPECT_EQ(c.and_count(), 5u);  // 1 AND per bit
  for (std::uint64_t x = 0; x < 32; ++x) {
    const std::int64_t sv = as_signed(x, 5);
    const std::uint64_t expect = sv > 0 ? x : 0;
    EXPECT_EQ(from_bits(eval_plain(c, {}, to_bits(x, 5))), expect);
  }
}

TEST(MaxMin, SignedPairsExhaustive) {
  Builder bld;
  const Bus a = bld.garbler_inputs(4);
  const Bus b = bld.evaluator_inputs(4);
  bld.set_outputs(max_signed(bld, a, b));
  bld.append_outputs(min_signed(bld, a, b));
  const Circuit c = bld.take();
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      const auto out = eval_plain(c, to_bits(x, 4), to_bits(y, 4));
      const std::int64_t sx = as_signed(x, 4), sy = as_signed(y, 4);
      EXPECT_EQ(as_signed(from_bits({out.begin(), out.begin() + 4}), 4),
                std::max(sx, sy));
      EXPECT_EQ(as_signed(from_bits({out.begin() + 4, out.end()}), 4),
                std::min(sx, sy));
    }
  }
}

class VectorSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VectorSize, MaxAndArgmaxMatchReference) {
  const std::size_t n = GetParam();
  const std::size_t w = 8;
  const Circuit cmax = make_maxpool_circuit(n, w);
  const Circuit carg = make_argmax_circuit(n, w);

  Prg prg(crypto::Block{n, 0xA6});
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> bits;
    std::vector<std::int64_t> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t raw =
          trial < 5 ? (trial % 2 ? 0x80 : 0x7F) : (prg.next_u64() & 0xFF);
      vals[i] = as_signed(raw, w);
      const auto vb = to_bits(raw, w);
      bits.insert(bits.end(), vb.begin(), vb.end());
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (vals[i] > vals[best]) best = i;

    EXPECT_EQ(as_signed(from_bits(eval_plain(cmax, {}, bits)), w), vals[best]);
    EXPECT_EQ(from_bits(eval_plain(carg, {}, bits)), best);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VectorSize,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 16));

TEST(ArgMax, TiesResolveToLowestIndex) {
  const Circuit c = make_argmax_circuit(4, 4);
  // All equal: index 0.
  std::vector<bool> bits;
  for (int i = 0; i < 4; ++i) {
    const auto vb = to_bits(5, 4);
    bits.insert(bits.end(), vb.begin(), vb.end());
  }
  EXPECT_EQ(from_bits(eval_plain(c, {}, bits)), 0u);
}

TEST(MlBlocks, GarbledArgmaxEndToEnd) {
  const Circuit c = make_argmax_circuit(4, 8);
  crypto::SystemRandom rng(crypto::Block{0xA7, 1});
  Prg prg(crypto::Block{0xA8, 2});
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<bool> bits;
    std::vector<std::int64_t> vals(4);
    for (std::size_t i = 0; i < 4; ++i) {
      const std::uint64_t raw = prg.next_u64() & 0xFF;
      vals[i] = as_signed(raw, 8);
      const auto vb = to_bits(raw, 8);
      bits.insert(bits.end(), vb.begin(), vb.end());
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < 4; ++i)
      if (vals[i] > vals[best]) best = i;
    const auto got =
        gc::garble_and_evaluate(c, gc::Scheme::kHalfGates, {}, bits, rng);
    EXPECT_EQ(from_bits(got), best);
  }
}

TEST(MlBlocks, GarbledReluLayer) {
  const Circuit c = make_relu_layer_circuit(3, 8);
  crypto::SystemRandom rng(crypto::Block{0xA9, 3});
  const std::vector<std::uint64_t> raw = {0x05, 0xFB, 0x80};  // +5, -5, -128
  std::vector<bool> bits;
  for (const auto v : raw) {
    const auto vb = to_bits(v, 8);
    bits.insert(bits.end(), vb.begin(), vb.end());
  }
  const auto got =
      gc::garble_and_evaluate(c, gc::Scheme::kHalfGates, {}, bits, rng);
  EXPECT_EQ(from_bits({got.begin(), got.begin() + 8}), 0x05u);
  EXPECT_EQ(from_bits({got.begin() + 8, got.begin() + 16}), 0u);
  EXPECT_EQ(from_bits({got.begin() + 16, got.end()}), 0u);
}

TEST(MlBlocks, EmptyInputsRejected) {
  Builder bld;
  EXPECT_THROW((void)vector_max_signed(bld, {}), std::invalid_argument);
  EXPECT_THROW((void)argmax_signed(bld, {}), std::invalid_argument);
  EXPECT_THROW((void)relu(bld, Bus{}), std::invalid_argument);
}

}  // namespace
}  // namespace maxel::circuit
