// GcCorePool and the multi-core garbling engine: sharding/coverage,
// deterministic per-core entropy, exception propagation, and the
// headline property — parallel_matmul is bit-identical to the serial
// simulator path at every core count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/gc_core_pool.hpp"
#include "core/matmul.hpp"
#include "crypto/prg.hpp"

namespace maxel::core {
namespace {

using crypto::Block;

TEST(GcCorePool, CoversEveryItemExactlyOnce) {
  GcCorePool pool(4, Block{1, 2});
  EXPECT_EQ(pool.cores(), 4u);

  constexpr std::size_t kN = 103;  // not divisible by 4
  std::vector<std::atomic<int>> hits(kN);
  std::vector<std::atomic<int>> core_of(kN);
  pool.parallel_for(kN, [&](std::size_t item, std::size_t core) {
    hits[item].fetch_add(1);
    core_of[item].store(static_cast<int>(core));
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;

  // Static contiguous sharding: core of item i is non-decreasing in i.
  for (std::size_t i = 1; i < kN; ++i)
    EXPECT_LE(core_of[i - 1].load(), core_of[i].load());
}

TEST(GcCorePool, ZeroCoresPicksHardwareConcurrency) {
  GcCorePool pool(0, Block{3, 4});
  EXPECT_GE(pool.cores(), 1u);
}

TEST(GcCorePool, PerCoreRngIsDeterministicInRootSeed) {
  GcCorePool a(3, Block{7, 9});
  GcCorePool b(3, Block{7, 9});
  GcCorePool c(3, Block{7, 10});
  for (std::size_t core = 0; core < 3; ++core) {
    const Block va = a.core_rng(core).next_block();
    EXPECT_EQ(va, b.core_rng(core).next_block());
    EXPECT_NE(va, c.core_rng(core).next_block());
  }
  // Streams of different cores are distinct.
  GcCorePool d(2, Block{7, 9});
  EXPECT_NE(d.core_rng(0).next_block(), d.core_rng(1).next_block());
}

TEST(GcCorePool, GrowingThePoolKeepsExistingCoreSeeds) {
  GcCorePool small(2, Block{21, 22});
  GcCorePool big(5, Block{21, 22});
  for (std::size_t core = 0; core < 2; ++core)
    EXPECT_EQ(small.core_rng(core).next_block(),
              big.core_rng(core).next_block());
}

TEST(GcCorePool, PropagatesWorkerExceptions) {
  GcCorePool pool(2, Block{5, 5});
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t item, std::size_t) {
                          if (item == 6) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool survives the failed epoch and stays usable.
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

// The tentpole determinism property: for fixed inputs, parallel_matmul
// with 1, 2, and 8 cores produces bit-identical products, all verified,
// and equal to the serial secure_matmul_on_sim product.
TEST(ParallelMatMul, BitIdenticalAcrossCoreCountsAndVsSerial) {
  const std::size_t b = 8, n = 3, m = 4, p = 3;
  crypto::Prg prg(Block{2024, 5});
  std::vector<std::vector<std::uint64_t>> a(n, std::vector<std::uint64_t>(m));
  std::vector<std::vector<std::uint64_t>> x(m, std::vector<std::uint64_t>(p));
  for (auto& row : a)
    for (auto& v : row) v = prg.next_u64();
  for (auto& row : x)
    for (auto& v : row) v = prg.next_u64();

  crypto::SystemRandom serial_rng(Block{1, 1});
  const SecureMatMulResult serial = secure_matmul_on_sim(a, x, b, serial_rng);
  ASSERT_TRUE(serial.verified);

  for (const std::size_t cores : {1u, 2u, 8u}) {
    const ParallelMatMulResult par =
        parallel_matmul(a, x, b, Block{99, 100}, cores);
    EXPECT_TRUE(par.verified) << cores << " cores";
    EXPECT_EQ(par.cores, cores);
    EXPECT_EQ(par.product, serial.product) << cores << " cores";
    // Work accounting is sharding-invariant: same tables/cycles totals
    // as the serial run, just split across per-core ledgers.
    EXPECT_EQ(par.tables, serial.tables);
    EXPECT_EQ(par.cycles, serial.cycles);
    ASSERT_EQ(par.core_stats.size(), cores);
    std::uint64_t table_sum = 0;
    for (const auto& st : par.core_stats) table_sum += st.tables;
    EXPECT_EQ(table_sum, par.tables);
  }
}

// Same root seed + same core count => identical per-core label streams,
// hence an identical run end to end (stats included).
TEST(ParallelMatMul, ReproducibleForFixedSeedAndCores) {
  const std::size_t b = 8;
  std::vector<std::vector<std::uint64_t>> a = {{3, 250}, {77, 19}};
  std::vector<std::vector<std::uint64_t>> x = {{5, 1}, {200, 131}};

  const ParallelMatMulResult r1 = parallel_matmul(a, x, b, Block{8, 8}, 2);
  const ParallelMatMulResult r2 = parallel_matmul(a, x, b, Block{8, 8}, 2);
  EXPECT_EQ(r1.product, r2.product);
  ASSERT_TRUE(r1.verified && r2.verified);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(r1.core_stats[c].tables, r2.core_stats[c].tables);
    EXPECT_EQ(r1.core_stats[c].labels_generated,
              r2.core_stats[c].labels_generated);
  }
}

TEST(ParallelMatMul, ShapeValidation) {
  std::vector<std::vector<std::uint64_t>> a = {{1, 2}};
  std::vector<std::vector<std::uint64_t>> bad = {{1}};
  EXPECT_THROW((void)parallel_matmul(a, bad, 8, Block{0, 1}, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace maxel::core
