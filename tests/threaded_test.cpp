// Real-concurrency protocol runs: garbler and evaluator on separate
// threads over blocking channels — no orchestrated phase interleaving,
// each party just runs its own loop, like a deployed server and client.
#include <gtest/gtest.h>

#include <thread>

#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "ot/iknp.hpp"
#include "proto/protocol.hpp"
#include "proto/threaded_channel.hpp"

namespace maxel::proto {
namespace {

using circuit::MacOptions;
using circuit::to_bits;
using crypto::Block;
using crypto::SystemRandom;

TEST(ThreadedChannel, BlocksUntilDataArrives) {
  auto [a, b] = ThreadedChannel::create_pair();
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    a->send_u64(1234);
  });
  EXPECT_EQ(b->recv_u64(), 1234u);  // blocks until the writer delivers
  writer.join();
}

TEST(ThreadedProtocol, SequentialMacAcrossThreads) {
  const MacOptions mac{8, 8, true};
  const circuit::Circuit c = circuit::make_mac_circuit(mac);
  const std::size_t rounds = 10;

  crypto::Prg prg(Block{0x7EAD, 1});
  std::vector<std::vector<bool>> a_bits(rounds), x_bits(rounds);
  std::uint64_t expect = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    a_bits[r] = to_bits(a, 8);
    x_bits[r] = to_bits(x, 8);
    expect = circuit::mac_reference(expect, a, x, mac);
  }

  auto [g_ch, e_ch] = ThreadedChannel::create_pair();
  ProtocolOptions opt;
  opt.ot = OtMode::kIknp;

  std::thread garbler_thread([&, g = std::move(g_ch)]() mutable {
    SystemRandom rng(Block{0x7EAD, 2});
    GarblerParty garbler(c, opt, *g, rng);
    garbler.setup_step2();
    garbler.setup_step4();
    for (std::size_t r = 0; r < rounds; ++r) {
      garbler.garble_and_send(a_bits[r]);
      garbler.finish_ot();
    }
  });

  std::uint64_t decoded = 0;
  std::thread evaluator_thread([&, e = std::move(e_ch)]() mutable {
    SystemRandom rng(Block{0x7EAD, 3});
    EvaluatorParty evaluator(c, opt, *e, rng);
    evaluator.setup_step1();
    evaluator.setup_step3();
    std::vector<bool> out;
    for (std::size_t r = 0; r < rounds; ++r) {
      evaluator.receive_and_choose(x_bits[r]);
      out = evaluator.evaluate_round();
    }
    decoded = circuit::from_bits(out);
  });

  garbler_thread.join();
  evaluator_thread.join();
  EXPECT_EQ(decoded, expect);
}

TEST(ThreadedProtocol, MillionairesWithBaseOt) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(16);
  auto [g_ch, e_ch] = ThreadedChannel::create_pair();
  ProtocolOptions opt;
  opt.ot = OtMode::kBase;

  std::thread garbler_thread([&, g = std::move(g_ch)]() mutable {
    SystemRandom rng(Block{0x7EAE, 1});
    GarblerParty garbler(c, opt, *g, rng);
    garbler.garble_and_send(to_bits(31337, 16));
    garbler.finish_ot();
  });

  bool result = false;
  std::thread evaluator_thread([&, e = std::move(e_ch)]() mutable {
    SystemRandom rng(Block{0x7EAE, 2});
    EvaluatorParty evaluator(c, opt, *e, rng);
    evaluator.receive_and_choose(to_bits(40000, 16));
    result = evaluator.evaluate_round().at(0);
  });

  garbler_thread.join();
  evaluator_thread.join();
  EXPECT_TRUE(result);  // 31337 < 40000
}

}  // namespace
}  // namespace maxel::proto
