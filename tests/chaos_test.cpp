// Chaos tier: deterministic fault injection against the full network
// stack.
//
// Three layers of coverage, all driven by seeded FaultPlans
// (net/fault.hpp) so every failure reproduces exactly from the plan
// string logged via SCOPED_TRACE:
//
//   * unit: FaultPlan parsing round-trips and rejects nonsense;
//     FaultyChannel over MemoryChannel executes each fault kind with
//     bit-exact predictability (the flip position is computable from
//     the seed);
//   * recovery: net::Client's SessionRetryPolicy survives mid-handshake
//     closes, mid-transfer closes, connect refusals, corrupted
//     sessions, and stalled peers — always by re-running a *fresh*
//     session, never by resuming one (wire labels are single-use; the
//     no-reuse test compares captured wire bytes across attempts);
//   * matrix: >= 30 seeded scenarios across all three serving paths
//     (precomputed net::Server, stream net::Server, svc::Broker), each
//     of which must terminate within a watchdog in either a bit-correct
//     verified MAC or a typed NetError — never a hang, never a silent
//     mismatch — with the service still serving afterwards.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuit/circuits.hpp"
#include "crypto/rng.hpp"
#include "net/client.hpp"
#include "net/demo_inputs.hpp"
#include "net/error.hpp"
#include "net/fault.hpp"
#include "net/handshake.hpp"
#include "net/reusable_service.hpp"
#include "net/server.hpp"
#include "net/tcp_channel.hpp"
#include "net/v3_service.hpp"
#include "ot/pool.hpp"
#include "proto/channel.hpp"
#include "svc/broker.hpp"

namespace maxel {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// FaultPlan: parsing, round-trip, validation.

TEST(FaultPlan, ParsesEveryKindAndRoundTrips) {
  const std::string spec =
      "seed=7;close@send:3;stall@recv:1:250;flip@recv:9;trunc@send:4;"
      "split@send:2;refuse@connect:0;close@recv:11";
  const net::FaultPlan plan = net::FaultPlan::parse(spec);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.events.size(), 7u);
  EXPECT_EQ(plan.events[0].kind, net::FaultKind::kClose);
  EXPECT_EQ(plan.events[0].op, net::FaultOp::kSend);
  EXPECT_EQ(plan.events[0].index, 3u);
  EXPECT_EQ(plan.events[1].kind, net::FaultKind::kStall);
  EXPECT_EQ(plan.events[1].param, 250u);
  EXPECT_EQ(plan.events[5].kind, net::FaultKind::kRefuseConnect);
  EXPECT_EQ(plan.events[5].op, net::FaultOp::kConnect);

  // to_string emits the canonical grammar; reparsing is a fixed point.
  EXPECT_EQ(plan.to_string(), spec);
  EXPECT_EQ(net::FaultPlan::parse(plan.to_string()).to_string(), spec);
}

TEST(FaultPlan, AcceptsCommasAndSpacesAndEmptySpec) {
  const net::FaultPlan plan =
      net::FaultPlan::parse("seed=3, close@recv:2 ,\tstall@send:0:10");
  EXPECT_EQ(plan.seed, 3u);
  EXPECT_EQ(plan.events.size(), 2u);

  const net::FaultPlan empty = net::FaultPlan::parse("");
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.seed, 1u);  // default seed survives an empty spec
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "boom@send:1",      // unknown kind
      "close@sideways:1", // unknown op
      "close@send",       // missing index
      "close@send:x",     // non-numeric index
      "trunc@recv:1",     // truncation is send-only
      "split@recv:1",     // so is splitting
      "stall@send:1",     // stall needs a duration
      "stall@send:1:0",   // ... a nonzero one
      "refuse@send:0",    // refuse goes with connect
      "close@connect:0",  // and only refuse does
      "flip@send:1:5",    // only stall takes a parameter
      "seed=",            // empty seed
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(net::FaultPlan::parse(spec), std::invalid_argument);
  }
}

TEST(FaultInjector, EventsFireOnceAndDeterministically) {
  const net::FaultPlan plan = net::FaultPlan::parse("seed=9;flip@send:1");
  net::FaultInjector a(plan), b(plan);

  EXPECT_EQ(a.on_send().kind, net::FaultKind::kNone);  // op 0: clean
  const auto fired = a.on_send();                      // op 1: the flip
  EXPECT_EQ(fired.kind, net::FaultKind::kFlip);
  EXPECT_EQ(a.on_send().kind, net::FaultKind::kNone);  // fired once only
  EXPECT_EQ(a.faults_fired(), 1u);

  // A fresh injector with the same plan replays the same seeded value.
  (void)b.on_send();
  EXPECT_EQ(b.on_send().rand, fired.rand);
  EXPECT_EQ(fired.rand,
            net::fault_mix64(9 ^ net::fault_mix64(
                                     (static_cast<std::uint64_t>(
                                          net::FaultOp::kSend)
                                      << 56) ^
                                     1)));
}

// ---------------------------------------------------------------------------
// FaultyChannel semantics over MemoryChannel (no sockets, no threads).

TEST(FaultyChannelUnit, EmptyPlanIsByteIdenticalPassThrough) {
  auto [a, b] = proto::MemoryChannel::create_pair();
  auto inj = std::make_shared<net::FaultInjector>(net::FaultPlan{});
  net::FaultyChannel fa(std::move(a), inj);
  net::FaultyChannel fb(std::move(b), inj);

  std::vector<std::uint8_t> capture;
  fb.set_recv_capture(&capture);

  fa.send_u64(41);
  EXPECT_EQ(fb.recv_u64(), 41u);
  std::vector<crypto::Block> blocks;
  for (std::uint64_t i = 0; i < 50; ++i) blocks.push_back(crypto::Block{i, ~i});
  fa.send_blocks(blocks);
  EXPECT_EQ(fb.recv_blocks(), blocks);
  std::vector<bool> bits = {true, false, true, true, false};
  fa.send_bits(bits);
  EXPECT_EQ(fb.recv_bits(), bits);

  EXPECT_EQ(inj->faults_fired(), 0u);
  EXPECT_FALSE(fa.transport_dropped());
  // Payload accounting is preserved through the wrapper, and the capture
  // sink saw every delivered byte.
  EXPECT_EQ(fa.bytes_sent(), fb.bytes_received());
  EXPECT_EQ(capture.size(), fb.bytes_received());
}

TEST(FaultyChannelUnit, FlipHitsExactlyThePredictedBit) {
  auto [a, b] = proto::MemoryChannel::create_pair();
  auto inj = std::make_shared<net::FaultInjector>(
      net::FaultPlan::parse("seed=42;flip@send:0"));
  net::FaultyChannel fa(std::move(a), inj);

  std::vector<std::uint8_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 3 + 1);
  fa.send_bytes(payload.data(), payload.size());

  std::vector<std::uint8_t> got(payload.size());
  b->recv_bytes(got.data(), got.size());

  // The header documents the mixer precisely so plans are predictable.
  const std::uint64_t bit =
      net::fault_mix64(42 ^ net::fault_mix64(0)) % (payload.size() * 8);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const std::uint8_t expect =
        i == bit / 8 ? payload[i] ^ static_cast<std::uint8_t>(1u << (bit % 8))
                     : payload[i];
    EXPECT_EQ(got[i], expect) << "byte " << i;
  }
  EXPECT_EQ(inj->faults_fired(), 1u);
}

TEST(FaultyChannelUnit, SplitDeliversIdenticalBytes) {
  auto [a, b] = proto::MemoryChannel::create_pair();
  auto inj = std::make_shared<net::FaultInjector>(
      net::FaultPlan::parse("seed=5;split@send:0"));
  net::FaultyChannel fa(std::move(a), inj);

  std::vector<std::uint8_t> payload(1'000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 3));
  fa.send_bytes(payload.data(), payload.size());

  std::vector<std::uint8_t> got(payload.size());
  b->recv_bytes(got.data(), got.size());
  EXPECT_EQ(got, payload);  // a split is benign: reassembly must hide it
  EXPECT_EQ(inj->faults_fired(), 1u);
}

TEST(FaultyChannelUnit, CloseAtSendDropsTransportForGood) {
  auto [a, b] = proto::MemoryChannel::create_pair();
  auto inj = std::make_shared<net::FaultInjector>(
      net::FaultPlan::parse("close@send:1"));
  net::FaultyChannel fa(std::move(a), inj);

  fa.send_u64(1);  // op 0: clean
  EXPECT_THROW(fa.send_u64(2), net::PeerClosedError);  // op 1: the close
  EXPECT_TRUE(fa.transport_dropped());

  // The link stays dead: every later op fails the same way, and flush
  // (called from destructors) is a harmless no-op.
  EXPECT_THROW(fa.send_u64(3), net::PeerClosedError);
  EXPECT_THROW((void)fa.recv_u64(), net::PeerClosedError);
  EXPECT_NO_THROW(fa.flush());
}

TEST(FaultyChannelUnit, CloseAtRecvFiresBeforeTouchingTheTransport) {
  auto [a, b] = proto::MemoryChannel::create_pair();
  auto inj = std::make_shared<net::FaultInjector>(
      net::FaultPlan::parse("close@recv:0"));
  net::FaultyChannel fa(std::move(a), inj);
  // Nothing was ever sent to us; the injected close must still be the
  // error we see (not MemoryChannel's empty-queue failure).
  EXPECT_THROW((void)fa.recv_u64(), net::PeerClosedError);
  EXPECT_TRUE(fa.transport_dropped());
}

TEST(FaultyChannelUnit, TruncateForwardsAStrictPrefixThenDies) {
  auto [a, b] = proto::MemoryChannel::create_pair();
  auto inj = std::make_shared<net::FaultInjector>(
      net::FaultPlan::parse("trunc@send:0"));
  net::FaultyChannel fa(std::move(a), inj);

  std::vector<std::uint8_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(200 - i);
  EXPECT_THROW(fa.send_bytes(payload.data(), payload.size()),
               net::PeerClosedError);
  EXPECT_TRUE(fa.transport_dropped());

  // Exactly the documented n/2 prefix made it out before the drop.
  std::vector<std::uint8_t> got(payload.size() / 2);
  b->recv_bytes(got.data(), got.size());
  EXPECT_EQ(0, std::memcmp(got.data(), payload.data(), got.size()));
}

TEST(FaultyChannelUnit, StallDelaysButDeliversIntact) {
  auto [a, b] = proto::MemoryChannel::create_pair();
  auto inj = std::make_shared<net::FaultInjector>(
      net::FaultPlan::parse("stall@send:0:60"));
  net::FaultyChannel fa(std::move(a), inj);

  const auto t0 = Clock::now();
  fa.send_u64(77);
  EXPECT_GE(seconds_since(t0), 0.055);
  EXPECT_EQ(b->recv_u64(), 77u);
  EXPECT_FALSE(fa.transport_dropped());
}

// ---------------------------------------------------------------------------
// Retry backoff schedule: pure, deterministic, capped.

TEST(RetryBackoff, DoublesAndCapsWithoutJitter) {
  net::SessionRetryPolicy p;
  p.backoff_ms = 100;
  p.backoff_max_ms = 350;
  p.jitter_pct = 0;
  EXPECT_EQ(net::retry_backoff_ms(p, 1), 100u);
  EXPECT_EQ(net::retry_backoff_ms(p, 2), 200u);
  EXPECT_EQ(net::retry_backoff_ms(p, 3), 350u);  // 400 hits the cap
  EXPECT_EQ(net::retry_backoff_ms(p, 9), 350u);
}

TEST(RetryBackoff, JitterIsBoundedAndSeedDeterministic) {
  net::SessionRetryPolicy p;
  p.backoff_ms = 1'000;
  p.backoff_max_ms = 10'000;
  p.jitter_pct = 20;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const std::uint64_t base = 1'000ull << (attempt - 1);
    const std::uint64_t w = net::retry_backoff_ms(p, attempt);
    EXPECT_GE(w, base * 80 / 100) << "attempt " << attempt;
    EXPECT_LE(w, base * 120 / 100) << "attempt " << attempt;
    // Same seed, same attempt -> the exact same wait (replayable runs).
    EXPECT_EQ(w, net::retry_backoff_ms(p, attempt));
  }
  net::SessionRetryPolicy other = p;
  other.jitter_seed = 99;
  bool any_differs = false;
  for (int attempt = 1; attempt <= 4; ++attempt)
    any_differs |=
        net::retry_backoff_ms(other, attempt) != net::retry_backoff_ms(p, attempt);
  EXPECT_TRUE(any_differs);  // the seed actually feeds the jitter
}

// ---------------------------------------------------------------------------
// Recovery: client retry against a live server, one fault at a time.

constexpr std::size_t kBits = 8;
constexpr std::size_t kRounds = 12;

net::ServerConfig chaos_server_config() {
  net::ServerConfig cfg;
  cfg.bind_addr = "127.0.0.1";
  cfg.port = 0;
  cfg.bits = kBits;
  cfg.rounds_per_session = kRounds;
  cfg.bank_low_watermark = 1;
  cfg.bank_batch = 1;
  cfg.precompute_cores = 2;
  cfg.max_sessions = 0;  // run until request_stop()
  cfg.accept_poll_ms = 50;
  cfg.verbose = false;
  cfg.idle_timeout_ms = 5'000;  // generous; scenario overrides tighten it
  return cfg;
}

net::ClientConfig chaos_client_config(std::uint16_t port,
                                      const std::string& plan) {
  net::ClientConfig cfg;
  cfg.port = port;
  cfg.bits = kBits;
  cfg.verbose = false;
  cfg.fault_plan = plan;
  cfg.retry.max_attempts = 4;
  cfg.retry.backoff_ms = 10;
  cfg.retry.backoff_max_ms = 50;
  cfg.tcp.recv_timeout_ms = 2'000;
  cfg.tcp.send_timeout_ms = 2'000;
  cfg.tcp.connect_attempts = 3;
  cfg.tcp.connect_backoff_ms = 20;
  return cfg;
}

struct ChaosOutcome {
  bool verified = false;
  bool threw = false;
  std::string error;
  std::uint32_t attempts = 0;
  std::uint64_t output = 0;
  double elapsed = 0;
};

// Every chaos run must end inside this bound — a hang is a failure even
// when CTest's own TIMEOUT would eventually kill the binary.
constexpr double kWatchdogSeconds = 25.0;

ChaosOutcome run_chaos_client(const net::ClientConfig& cfg) {
  ChaosOutcome out;
  const auto t0 = Clock::now();
  try {
    const net::ClientStats cs = net::run_client(cfg);
    out.verified = cs.verified;
    out.attempts = cs.attempts;
    out.output = cs.output_value;
  } catch (const net::NetError& e) {
    out.threw = true;
    out.error = e.what();
  }
  out.elapsed = seconds_since(t0);
  return out;
}

TEST(ChaosRecovery, MidHandshakeCloseRetriesToSuccess) {
  net::Server server(chaos_server_config());
  std::thread serve([&] { server.serve(); });

  // Send op 0 is the client hello: the very first bytes of the session
  // die on the floor, and the retry must start over from connect.
  const ChaosOutcome out =
      run_chaos_client(chaos_client_config(server.port(), "close@send:0"));
  server.request_stop();
  serve.join();

  EXPECT_TRUE(out.verified) << out.error;
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.output, net::demo_mac_reference(7, kBits, kRounds));
  EXPECT_EQ(server.stats().sessions_served, 1u);
}

TEST(ChaosRecovery, MidTransferCloseRetriesToSuccess) {
  net::Server server(chaos_server_config());
  std::thread serve([&] { server.serve(); });

  // Recv op 8 lands mid-session, after OT setup has produced garbled
  // material — the attempt that dies has real tables in flight.
  const ChaosOutcome out =
      run_chaos_client(chaos_client_config(server.port(), "close@recv:8"));
  server.request_stop();
  serve.join();

  EXPECT_TRUE(out.verified) << out.error;
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.output, net::demo_mac_reference(7, kBits, kRounds));
}

TEST(ChaosRecovery, ConnectRefusalRetriesToSuccess) {
  net::Server server(chaos_server_config());
  std::thread serve([&] { server.serve(); });

  const ChaosOutcome out =
      run_chaos_client(chaos_client_config(server.port(), "refuse@connect:0"));
  server.request_stop();
  serve.join();

  EXPECT_TRUE(out.verified) << out.error;
  EXPECT_EQ(out.attempts, 2u);
  // The refused attempt never reached the server at all.
  EXPECT_EQ(server.stats().sessions_served, 1u);
  EXPECT_EQ(server.stats().connection_errors, 0u);
}

TEST(ChaosRecovery, ServerSideCloseIsSurvivedByBothSides) {
  net::ServerConfig scfg = chaos_server_config();
  scfg.fault_plan = "close@send:3";  // the server's own link dies once
  net::Server server(scfg);
  std::thread serve([&] { server.serve(); });

  net::ClientConfig ccfg = chaos_client_config(server.port(), "");
  const ChaosOutcome out = run_chaos_client(ccfg);
  server.request_stop();
  serve.join();

  EXPECT_TRUE(out.verified) << out.error;
  EXPECT_EQ(out.attempts, 2u);
  // The aborted connection is accounted as a connection error, not a
  // served session; the retry is the one served session.
  EXPECT_EQ(server.stats().sessions_served, 1u);
  EXPECT_GE(server.stats().connection_errors, 1u);
}

TEST(ChaosRecovery, StalledClientIsEvictedAndRecovers) {
  net::ServerConfig scfg = chaos_server_config();
  scfg.idle_timeout_ms = 250;  // evict a silent peer fast
  net::Server server(scfg);
  std::thread serve([&] { server.serve(); });

  // The client goes quiet for 1.5 s mid-session — far past the server's
  // idle deadline. The server must evict it (freeing the accept loop),
  // and the client's retry must complete against the recovered server.
  net::ClientConfig ccfg =
      chaos_client_config(server.port(), "stall@send:2:1500");
  const ChaosOutcome out = run_chaos_client(ccfg);
  server.request_stop();
  serve.join();

  EXPECT_TRUE(out.verified) << out.error;
  EXPECT_GE(out.attempts, 2u);
  EXPECT_GE(server.stats().idle_timeouts, 1u);
  EXPECT_GE(server.stats().connection_errors,
            server.stats().idle_timeouts);  // idle is a subset
  EXPECT_EQ(server.stats().sessions_served, 1u);
}

// The heart of the retry contract: a retried session shares *nothing*
// with the attempt it replaces. Wire labels are single-use, so the
// garbled material of attempt 2 must be freshly generated — byte-for-
// byte different from what attempt 1 received before its link died.
TEST(ChaosRecovery, RetryNeverReusesGarbledMaterial) {
  net::Server server(chaos_server_config());
  std::thread serve([&] { server.serve(); });

  auto injector = std::make_shared<net::FaultInjector>(
      net::FaultPlan::parse("close@recv:8"));
  std::deque<std::vector<std::uint8_t>> captures;  // one stream per attempt

  net::ClientConfig cfg = chaos_client_config(server.port(), "");
  cfg.retry.max_attempts = 2;
  const std::uint16_t port = server.port();
  cfg.channel_factory = [&]() -> std::unique_ptr<proto::Channel> {
    auto tcp = net::TcpChannel::connect("127.0.0.1", port, cfg.tcp);
    auto faulty =
        std::make_unique<net::FaultyChannel>(std::move(tcp), injector);
    captures.emplace_back();
    faulty->set_recv_capture(&captures.back());
    return faulty;
  };

  const ChaosOutcome out = run_chaos_client(cfg);
  server.request_stop();
  serve.join();

  EXPECT_TRUE(out.verified) << out.error;
  EXPECT_EQ(out.attempts, 2u);
  ASSERT_EQ(captures.size(), 2u);

  // Attempt 1 died mid-stream; attempt 2 ran to completion.
  const std::vector<std::uint8_t>& first = captures[0];
  const std::vector<std::uint8_t>& second = captures[1];
  ASSERT_LT(first.size(), second.size());

  // Compare what both attempts received over their common prefix. The
  // deterministic handshake reply may coincide, but the session payload
  // (OT setup, garbled tables, labels) is keyed by per-session
  // randomness: if the overlapping streams were identical, the server
  // would have replayed garbled material across sessions.
  const std::size_t overlap = std::min(first.size(), second.size());
  ASSERT_GT(overlap, 64u);
  EXPECT_NE(0, std::memcmp(first.data(), second.data(), overlap))
      << "retry attempt received byte-identical garbled material";
}

// The same contract extended to the v3 OT pool: a retried session must
// consume *fresh* pool indices — never the ones the dead attempt
// claimed — and must do so by resuming the pool, not by redoing the
// base OT. The dead attempt's claim is burned (discarded), and the wire
// bytes of the two attempts differ over their overlap.
TEST(ChaosRecovery, RetryResumesOtPoolAndNeverReusesIndices) {
  net::Server server(chaos_server_config());
  std::thread serve([&] { server.serve(); });

  crypto::SystemRandom id_rng(crypto::Block{91, 3});
  auto state = net::make_v3_client_state(id_rng);

  // Session 1: clean. Pays the base OT and the one extension batch, so
  // the faulted session below resumes with a ~10-op setup and the fault
  // lands squarely in the round material.
  net::ClientConfig clean = chaos_client_config(server.port(), "");
  clean.protocol = net::kProtocolVersionV3;
  clean.v3_state = state;
  const ChaosOutcome warm = run_chaos_client(clean);
  ASSERT_TRUE(warm.verified) << warm.error;

  // Session 2: recv op 25 dies mid-rounds, after the resumed setup
  // claimed and announced an index range.
  auto injector = std::make_shared<net::FaultInjector>(
      net::FaultPlan::parse("close@recv:25"));
  std::deque<std::vector<std::uint8_t>> captures;  // one stream per attempt

  net::ClientConfig cfg = chaos_client_config(server.port(), "");
  cfg.protocol = net::kProtocolVersionV3;
  cfg.v3_state = state;
  cfg.retry.max_attempts = 2;
  const std::uint16_t port = server.port();
  cfg.channel_factory = [&]() -> std::unique_ptr<proto::Channel> {
    auto tcp = net::TcpChannel::connect("127.0.0.1", port, cfg.tcp);
    auto faulty =
        std::make_unique<net::FaultyChannel>(std::move(tcp), injector);
    captures.emplace_back();
    faulty->set_recv_capture(&captures.back());
    return faulty;
  };

  const ChaosOutcome out = run_chaos_client(cfg);
  server.request_stop();
  serve.join();

  EXPECT_TRUE(out.verified) << out.error;
  EXPECT_EQ(out.attempts, 2u);
  ASSERT_EQ(captures.size(), 2u);

  const net::ServerStats ss = server.stats();
  EXPECT_EQ(ss.v3_sessions_served, 2u);
  // Every attempt after session 1 resumed its pool: exactly one base OT
  // and one extension batch ever ran, dead attempt included.
  EXPECT_EQ(ss.v3_fresh_pools, 1u);
  EXPECT_EQ(ss.v3_ot_extended,
            static_cast<std::uint64_t>(ot::kPoolExtendBatch));
  EXPECT_EQ(state->pool.extended(),
            static_cast<std::uint64_t>(ot::kPoolExtendBatch));
  // The dead attempt's claim was discarded, not left outstanding, and
  // the client's watermark is past two disjoint per-session ranges.
  EXPECT_EQ(server.v3_outstanding_claims(), 0u);
  EXPECT_GE(state->pool.watermark(), 2u * kRounds * kBits);
  EXPECT_GE(ss.connection_errors, 1u);

  // Byte-level no-reuse: over the prefix both attempts received, the
  // streams must differ — the retry was served fresh garbled material
  // bound to a fresh OT index range.
  const std::vector<std::uint8_t>& first = captures[0];
  const std::vector<std::uint8_t>& second = captures[1];
  const std::size_t overlap = std::min(first.size(), second.size());
  ASSERT_GT(overlap, 64u);
  EXPECT_NE(0, std::memcmp(first.data(), second.data(), overlap))
      << "retried v3 session received byte-identical material";
}

// A connection killed during the resumption setup itself (before any
// round material moves): the pool must roll forward — the next attempt
// resumes it, any half-made claim is discarded cleanly, and no second
// base OT or extension is paid.
TEST(ChaosRecovery, KilledResumptionRollsThePoolForward) {
  net::Server server(chaos_server_config());
  std::thread serve([&] { server.serve(); });

  crypto::SystemRandom id_rng(crypto::Block{17, 29});
  auto state = net::make_v3_client_state(id_rng);

  // Session 1: clean; pays the base OT and one extension batch.
  net::ClientConfig clean = chaos_client_config(server.port(), "");
  clean.protocol = net::kProtocolVersionV3;
  clean.v3_state = state;
  const ChaosOutcome s1 = run_chaos_client(clean);

  // Session 2: the link dies on an early recv — inside the resumption
  // handshake/setup exchange, before the rounds.
  net::ClientConfig faulty = chaos_client_config(server.port(), "close@recv:3");
  faulty.protocol = net::kProtocolVersionV3;
  faulty.v3_state = state;
  const ChaosOutcome s2 = run_chaos_client(faulty);

  server.request_stop();
  serve.join();

  EXPECT_TRUE(s1.verified) << s1.error;
  EXPECT_EQ(s1.attempts, 1u);
  EXPECT_TRUE(s2.verified) << s2.error;
  EXPECT_EQ(s2.attempts, 2u);

  const net::ServerStats ss = server.stats();
  EXPECT_EQ(ss.v3_sessions_served, 2u);
  EXPECT_EQ(ss.v3_fresh_pools, 1u);  // only session 1 paid a base OT
  EXPECT_EQ(state->pool.extended(),
            static_cast<std::uint64_t>(ot::kPoolExtendBatch));
  EXPECT_EQ(server.v3_outstanding_claims(), 0u);  // nothing stuck claimed
  // Two sessions consumed; the dead attempt may have burned a range.
  EXPECT_GE(state->pool.watermark(), 2u * kRounds * kBits);
}

TEST(ChaosRecovery, NonRetryableHandshakeRejectFailsFastDespiteRetries) {
  net::Server server(chaos_server_config());
  std::thread serve([&] { server.serve(); });

  net::ClientConfig cfg = chaos_client_config(server.port(), "");
  cfg.bits = kBits * 2;  // bit-width mismatch: a config error, not luck
  const auto t0 = Clock::now();
  try {
    net::run_client(cfg);
    FAIL() << "mismatched client was accepted";
  } catch (const net::HandshakeError& e) {
    EXPECT_EQ(e.code(), net::RejectCode::kBitWidthMismatch);
    EXPECT_FALSE(net::net_error_is_retryable(e));
  }
  // No backoff was burned on a failure retry cannot fix.
  EXPECT_LT(seconds_since(t0), 5.0);

  server.request_stop();
  serve.join();
  EXPECT_EQ(server.stats().sessions_served, 0u);
}

TEST(ChaosRecovery, ExhaustedRetriesSurfaceTheTypedError) {
  // Refuse every connect the policy is willing to make: the final error
  // must be the typed ConnectError of the last attempt, not a generic
  // failure, and attempts must stop at the policy bound.
  net::ClientConfig cfg = chaos_client_config(1 /* nobody listens */, "");
  cfg.retry.max_attempts = 2;
  cfg.tcp.connect_attempts = 1;
  cfg.tcp.connect_timeout_ms = 200;
  cfg.tcp.connect_backoff_ms = 5;
  EXPECT_THROW(net::run_client(cfg), net::ConnectError);
}

// ---------------------------------------------------------------------------
// The scenario matrix: seeded plans x all three serving paths.

// Ten pinned plans. Indices are raw-op counts (stable across runs), so
// the schedule reproduces bit-for-bit from the string alone; together
// with the three serving modes below this is 30 chaos scenarios.
const char* const kMatrixPlans[] = {
    "close@send:0",            // hello dies
    "close@send:2",            // OT setup dies on our side
    "close@recv:1",            // handshake reply dies
    "close@recv:6",            // session material dies
    "trunc@send:1",            // peer sees a mid-message EOF
    "trunc@send:3",
    "seed=4;split@send:2",     // benign short write: must verify first try
    "refuse@connect:0",        // first connect refused outright
    "seed=3;flip@send:2",      // corrupted payload toward the server
    "seed=11;stall@recv:1:300" // a short stall inside the recv timeout
};

void check_outcome(const ChaosOutcome& out, std::uint64_t expected_mac) {
  // The chaos contract: bounded time, then either a bit-correct MAC or
  // a typed NetError. Anything else — hang, crash, silent mismatch —
  // fails the suite.
  EXPECT_LT(out.elapsed, kWatchdogSeconds);
  if (out.threw) {
    EXPECT_FALSE(out.error.empty());
  } else {
    EXPECT_TRUE(out.verified) << "completed without verifying";
    EXPECT_EQ(out.output, expected_mac);
  }
}

TEST(ChaosMatrix, PrecomputedServerSurvivesEveryPlan) {
  const std::uint64_t expected = net::demo_mac_reference(7, kBits, kRounds);
  int recovered = 0;
  for (const char* plan : kMatrixPlans) {
    SCOPED_TRACE(std::string("plan=") + plan + " mode=precomputed");
    net::Server server(chaos_server_config());
    std::thread serve([&] { server.serve(); });

    const ChaosOutcome out =
        run_chaos_client(chaos_client_config(server.port(), plan));
    check_outcome(out, expected);
    if (out.verified && out.attempts >= 2) ++recovered;

    // Whatever the plan did, the server must still serve a clean client.
    if (out.threw) {
      const ChaosOutcome clean =
          run_chaos_client(chaos_client_config(server.port(), ""));
      EXPECT_TRUE(clean.verified) << clean.error;
    }
    server.request_stop();
    serve.join();
  }
  // Most plans are transient faults: retry must actually be recovering,
  // not every scenario dying with a typed error.
  EXPECT_GE(recovered, 5);
}

TEST(ChaosMatrix, StreamServerSurvivesEveryPlan) {
  const std::uint64_t expected = net::demo_mac_reference(7, kBits, kRounds);
  int recovered = 0;
  for (const char* plan : kMatrixPlans) {
    SCOPED_TRACE(std::string("plan=") + plan + " mode=stream");
    net::ServerConfig scfg = chaos_server_config();
    scfg.stream_chunk_rounds = 4;  // several chunks even at kRounds = 12
    net::Server server(scfg);
    std::thread serve([&] { server.serve(); });

    net::ClientConfig ccfg = chaos_client_config(server.port(), plan);
    ccfg.mode = net::SessionMode::kStream;
    const ChaosOutcome out = run_chaos_client(ccfg);
    check_outcome(out, expected);
    if (out.verified && out.attempts >= 2) ++recovered;

    if (out.threw) {
      net::ClientConfig clean_cfg = chaos_client_config(server.port(), "");
      clean_cfg.mode = net::SessionMode::kStream;
      const ChaosOutcome clean = run_chaos_client(clean_cfg);
      EXPECT_TRUE(clean.verified) << clean.error;
    }
    server.request_stop();
    serve.join();
  }
  EXPECT_GE(recovered, 5);
}

// Fourth serving path: protocol v3 with the cross-session OT pool. On
// top of the usual chaos contract, every scenario must leave the pool
// registry with zero outstanding claims — a death anywhere in the
// resumption setup or the rounds either rolls the pool forward or
// discards the claim, never wedges it.
TEST(ChaosMatrix, V3ServerSurvivesEveryPlanWithNoStuckClaims) {
  const std::uint64_t expected = net::demo_mac_reference(7, kBits, kRounds);
  int recovered = 0;
  for (const char* plan : kMatrixPlans) {
    SCOPED_TRACE(std::string("plan=") + plan + " mode=v3");
    net::Server server(chaos_server_config());
    std::thread serve([&] { server.serve(); });

    net::ClientConfig ccfg = chaos_client_config(server.port(), plan);
    ccfg.protocol = net::kProtocolVersionV3;
    const ChaosOutcome out = run_chaos_client(ccfg);
    check_outcome(out, expected);
    if (out.verified && out.attempts >= 2) ++recovered;

    if (out.threw) {
      net::ClientConfig clean_cfg = chaos_client_config(server.port(), "");
      clean_cfg.protocol = net::kProtocolVersionV3;
      const ChaosOutcome clean = run_chaos_client(clean_cfg);
      EXPECT_TRUE(clean.verified) << clean.error;
    }
    server.request_stop();
    serve.join();
    // Checked only after the serve loop is fully down: consume runs
    // after the last flush, so polling mid-serve would race it.
    EXPECT_EQ(server.v3_outstanding_claims(), 0u);
  }
  EXPECT_GE(recovered, 5);
}

// Fifth serving path: the reusable garble-once lane. Same contract as
// v3 (bounded time, bit-correct or typed error, zero stuck claims after
// every scenario), and a fault anywhere — artifact delivery included —
// must never burn the one shared artifact: a clean client still
// verifies afterwards off the same garbling.
TEST(ChaosMatrix, ReusableServerSurvivesEveryPlanWithNoStuckClaims) {
  const std::uint64_t expected = net::demo_mac_reference(7, kBits, kRounds);
  int recovered = 0;
  for (const char* plan : kMatrixPlans) {
    SCOPED_TRACE(std::string("plan=") + plan + " mode=reusable");
    net::Server server(chaos_server_config());
    std::thread serve([&] { server.serve(); });

    net::ClientConfig ccfg = chaos_client_config(server.port(), plan);
    ccfg.mode = net::SessionMode::kReusable;
    const ChaosOutcome out = run_chaos_client(ccfg);
    check_outcome(out, expected);
    if (out.verified && out.attempts >= 2) ++recovered;

    if (out.threw) {
      net::ClientConfig clean_cfg = chaos_client_config(server.port(), "");
      clean_cfg.mode = net::SessionMode::kReusable;
      const ChaosOutcome clean = run_chaos_client(clean_cfg);
      EXPECT_TRUE(clean.verified) << clean.error;
    }
    server.request_stop();
    serve.join();
    EXPECT_EQ(server.v3_outstanding_claims(), 0u);
    EXPECT_EQ(server.stats().reusable_garbles, 1u);  // chaos never re-garbles
  }
  EXPECT_GE(recovered, 5);
}

// The corrupt-artifact verdict, deterministically: serve off a context
// whose view bytes were flipped after hashing (exactly what an in-flight
// corruption looks like to the client). The client must die to its
// SHA-256 check with a typed CorruptionError — never evaluate off the
// poisoned tables — and the server's pool claim must be discarded.
TEST(ChaosRecovery, CorruptReusableArtifactDiesTypedWithNoStuckClaim) {
  const circuit::Circuit circ =
      circuit::make_mac_circuit(circuit::MacOptions{kBits, kBits, true});
  crypto::SystemRandom garble_rng(crypto::Block{0xC0, 0xDE});
  net::ReusableServeContext ctx = net::make_reusable_context(
      circ, net::garble_reusable(circ, kBits, garble_rng), kRounds, 7);
  ctx.view_bytes[ctx.view_bytes.size() / 2] ^= 0x20;  // sha is now stale

  net::ServerExpectation ex;
  ex.scheme = gc::Scheme::kHalfGates;
  ex.bit_width = kBits;
  ex.circuit_hash = net::circuit_fingerprint(circ);
  ex.rounds_per_session = kRounds;
  ex.allow_v3 = true;
  ex.allow_reusable = true;

  net::TcpOptions topt;
  topt.recv_timeout_ms = 5'000;
  net::TcpListener lis(0, "127.0.0.1");
  net::V3PoolRegistry reg(crypto::SystemRandom().next_block());
  std::unique_ptr<net::TcpChannel> server_ch;
  std::thread accept([&] { server_ch = lis.accept(5'000, topt); });
  auto client_ch = net::TcpChannel::connect("127.0.0.1", lis.port(), topt);
  accept.join();

  std::thread server([&] {
    try {
      const net::V23Handshake hs = net::server_handshake_v23(*server_ch, ex);
      net::ServerStats local;
      net::serve_reusable_session(*server_ch, reg, *hs.ext, ctx, local);
    } catch (const net::NetError&) {
      // The client hangs up at the checksum; any typed death is fine —
      // the claim-discard assertion below is what matters.
    }
  });

  net::ClientHello hello;
  hello.scheme = static_cast<std::uint8_t>(ex.scheme);
  hello.ot = static_cast<std::uint8_t>(net::OtChoice::kIknp);
  hello.mode = static_cast<std::uint8_t>(net::SessionMode::kReusable);
  hello.bit_width = ex.bit_width;
  hello.circuit_hash = ex.circuit_hash;
  crypto::SystemRandom id_rng(crypto::Block{0xFA, 0x11});
  auto state = net::make_v3_client_state(id_rng);
  net::HelloExtV3 hext;
  hext.client_id = state->client_id;
  (void)net::client_handshake_v3(*client_ch, hello, hext);

  net::DemoInputStream x_inputs(7, net::kEvaluatorStream, kBits);
  std::vector<std::vector<bool>> e_bits(kRounds);
  for (auto& row : e_bits) row = x_inputs.next_bits();
  crypto::SystemRandom rng;
  EXPECT_THROW(
      net::eval_reusable_session(*client_ch, circ, e_bits, *state, rng),
      net::CorruptionError);
  client_ch.reset();  // hang up; the server thread dies typed
  server.join();
  EXPECT_EQ(reg.outstanding_claims(), 0u);
  // The poisoned view never entered the client's cache.
  EXPECT_FALSE(state->reusable_view.has_value());
}

class BrokerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spool_dir_ = fs::temp_directory_path() /
                 ("maxel_chaos_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()) +
                  "_" + ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
    fs::remove_all(spool_dir_);
  }
  void TearDown() override { fs::remove_all(spool_dir_); }

  svc::BrokerConfig chaos_broker_config() {
    svc::BrokerConfig cfg;
    cfg.bind_addr = "127.0.0.1";
    cfg.port = 0;
    cfg.bits = kBits;
    cfg.rounds_per_session = kRounds;
    cfg.spool_dir = spool_dir_.string();
    cfg.spool_low_watermark = 1;
    cfg.spool_high_watermark = 3;
    cfg.workers = 2;
    cfg.admission_queue = 4;
    cfg.accept_poll_ms = 50;
    cfg.verbose = false;
    cfg.idle_timeout_ms = 5'000;
    return cfg;
  }

  fs::path spool_dir_;
};

TEST_F(BrokerChaosTest, BrokerSurvivesEveryPlan) {
  const std::uint64_t expected = net::demo_mac_reference(7, kBits, kRounds);
  int recovered = 0;
  for (const char* plan : kMatrixPlans) {
    SCOPED_TRACE(std::string("plan=") + plan + " mode=broker");
    svc::Broker broker(chaos_broker_config());
    std::thread run([&] { broker.run(); });

    const ChaosOutcome out =
        run_chaos_client(chaos_client_config(broker.port(), plan));
    check_outcome(out, expected);
    if (out.verified && out.attempts >= 2) ++recovered;

    if (out.threw) {
      const ChaosOutcome clean =
          run_chaos_client(chaos_client_config(broker.port(), ""));
      EXPECT_TRUE(clean.verified) << clean.error;
    }
    broker.request_stop();
    run.join();
  }
  EXPECT_GE(recovered, 5);
}

// Broker-side injection: the fault fires inside a worker, the error is
// accounted in the metrics registry, and the worker pool keeps serving.
TEST_F(BrokerChaosTest, BrokerSideFaultIsMeteredAndSurvived) {
  svc::BrokerConfig cfg = chaos_broker_config();
  cfg.fault_plan = "close@send:5";
  svc::Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  const ChaosOutcome out =
      run_chaos_client(chaos_client_config(broker.port(), ""));
  broker.request_stop();
  run.join();

  EXPECT_TRUE(out.verified) << out.error;
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(broker.metrics().gauge("faults_injected").value(), 1);
  EXPECT_GE(broker.metrics().counter("peer_disconnects").value() +
                broker.metrics().counter("connection_errors").value(),
            1u);
  EXPECT_EQ(broker.stats().server.sessions_served, 1u);
}

// Reusable sessions through the chaos matrix against the broker: a kill
// anywhere — artifact delivery, the d/z exchange, mid-evaluation — must
// end typed-or-verified, leave zero stuck claims, and never cost the
// spool its artifact: one garbling per broker, no matter what the link
// does.
TEST_F(BrokerChaosTest, ReusableBrokerSurvivesEveryPlanOffOneGarbling) {
  const std::uint64_t expected = net::demo_mac_reference(7, kBits, kRounds);
  int recovered = 0;
  for (const char* plan : kMatrixPlans) {
    SCOPED_TRACE(std::string("plan=") + plan + " mode=broker-reusable");
    svc::Broker broker(chaos_broker_config());
    std::thread run([&] { broker.run(); });

    net::ClientConfig ccfg = chaos_client_config(broker.port(), plan);
    ccfg.mode = net::SessionMode::kReusable;
    const ChaosOutcome out = run_chaos_client(ccfg);
    check_outcome(out, expected);
    if (out.verified && out.attempts >= 2) ++recovered;

    if (out.threw) {
      net::ClientConfig clean_cfg = chaos_client_config(broker.port(), "");
      clean_cfg.mode = net::SessionMode::kReusable;
      const ChaosOutcome clean = run_chaos_client(clean_cfg);
      EXPECT_TRUE(clean.verified) << clean.error;
    }
    broker.request_stop();
    run.join();
    EXPECT_EQ(broker.v3_outstanding_claims(), 0u);
    const svc::BrokerStats st = broker.stats();
    EXPECT_LE(st.server.reusable_garbles, 1u);
    EXPECT_EQ(st.spool.reusable_ready, 1u);  // artifact survived the chaos
  }
  EXPECT_GE(recovered, 5);
}

}  // namespace
}  // namespace maxel
