// Streamed-chunk codec: byte-exact round trips, channel framing, and
// malformed-stream rejection in the session_io mold — every truncation,
// bit flip and lying count prefix must surface as a typed error, never
// a crash, a hang, or an OOM-sized allocation. The chunk is what a
// streaming client parses straight off the socket, so its parser faces
// the most hostile bytes in the codebase.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "proto/channel.hpp"
#include "proto/chunk_io.hpp"
#include "sweep_env.hpp"

namespace maxel::proto {
namespace {

using circuit::MacOptions;
using crypto::Block;
using crypto::SystemRandom;

// Builds a chunk from genuinely garbled material (real table rows, real
// labels, the round-0 DFF state labels when first_round == 0), with the
// garbler input labels actively selected the way the server does it.
WireChunk make_chunk(const circuit::Circuit& c, std::size_t rounds,
                     std::uint64_t seed, std::uint64_t first_round = 0) {
  SystemRandom rng(Block{seed, 0x77});
  gc::CircuitGarbler g(c, gc::Scheme::kHalfGates, rng);
  WireChunk wc;
  wc.scheme = gc::Scheme::kHalfGates;
  wc.first_round = first_round;
  for (std::size_t r = 0; r < rounds; ++r) {
    gc::RoundMaterial rm = g.garble_round_material();
    WireChunk::Round wr;
    wr.tables = std::move(rm.tables);
    wr.garbler_labels = std::move(rm.garbler_labels0);
    for (std::size_t i = 0; i < wr.garbler_labels.size(); ++i)
      if ((i + r) % 2) wr.garbler_labels[i] ^= g.delta();
    wr.fixed_labels = std::move(rm.fixed_labels);
    wr.output_map = std::move(rm.output_map);
    if (r == 0 && first_round == 0)
      wc.initial_state_labels = g.initial_state_labels();
    wc.rounds.push_back(std::move(wr));
  }
  return wc;
}

void expect_chunks_equal(const WireChunk& a, const WireChunk& b) {
  EXPECT_EQ(a.first_round, b.first_round);
  EXPECT_EQ(a.scheme, b.scheme);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].tables.tables, b.rounds[r].tables.tables);
    EXPECT_EQ(a.rounds[r].garbler_labels, b.rounds[r].garbler_labels);
    EXPECT_EQ(a.rounds[r].fixed_labels, b.rounds[r].fixed_labels);
    EXPECT_EQ(a.rounds[r].output_map, b.rounds[r].output_map);
  }
  EXPECT_EQ(a.initial_state_labels, b.initial_state_labels);
}

TEST(ChunkIo, RoundTripIsExact) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const WireChunk wc = make_chunk(c, 3, 1);
  ASSERT_FALSE(wc.initial_state_labels.empty());  // MAC has DFF state

  const std::vector<std::uint8_t> bytes = serialize_chunk(wc);
  const WireChunk back = parse_chunk(bytes.data(), bytes.size());
  expect_chunks_equal(wc, back);
}

TEST(ChunkIo, MidSessionChunkCarriesNoStateLabels) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(8);
  const WireChunk wc = make_chunk(c, 2, 2, /*first_round=*/16);
  EXPECT_TRUE(wc.initial_state_labels.empty());

  const std::vector<std::uint8_t> bytes = serialize_chunk(wc);
  const WireChunk back = parse_chunk(bytes.data(), bytes.size());
  EXPECT_EQ(back.first_round, 16u);
  expect_chunks_equal(wc, back);
}

TEST(ChunkIo, ChannelFramingMatchesByteCodec) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const WireChunk wc = make_chunk(c, 2, 3);

  auto [tx, rx] = MemoryChannel::create_pair();
  send_chunk(*tx, wc);
  const WireChunk back = recv_chunk(*rx);
  expect_chunks_equal(wc, back);

  // The frame is one length-prefixed record holding exactly the
  // serialize_chunk bytes — re-serializing the received chunk must
  // reproduce them bit for bit.
  EXPECT_EQ(serialize_chunk(back), serialize_chunk(wc));
}

TEST(ChunkIo, RecvRejectsOversizeLengthBeforeAllocating) {
  auto [tx, rx] = MemoryChannel::create_pair();
  tx->send_u64(kMaxChunkWireBytes + 1);  // lying length prefix
  EXPECT_THROW((void)recv_chunk(*rx), ChunkFormatError);
}

// ---------------------------------------------------------------------------
// Hostile-input hardening (mirrors session_io_test): anything but
// success or std::runtime_error — notably std::bad_alloc from an
// OOM-sized reserve — escapes and fails the test.

void parse_must_not_crash(const std::vector<std::uint8_t>& bytes,
                          const char* what) {
  try {
    (void)parse_chunk(bytes.data(), bytes.size());
  } catch (const std::runtime_error&) {
    // Typed rejection: the acceptable failure mode.
  }
  SUCCEED() << what;
}

TEST(ChunkIoFuzz, EveryTruncationFailsTyped) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  const std::vector<std::uint8_t> full = serialize_chunk(make_chunk(c, 1, 4));
  ASSERT_GT(full.size(), 32u);
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<long>(len));
    EXPECT_THROW((void)parse_chunk(cut.data(), cut.size()),
                 std::runtime_error)
        << "truncated to " << len << " bytes";
  }
}

TEST(ChunkIoFuzz, SingleByteMutationsNeverCrash) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  const std::vector<std::uint8_t> full = serialize_chunk(make_chunk(c, 2, 5));
  // Every offset, three mutation patterns: bit flip, zero, all-ones.
  // Magic, scheme, counts, table rows and the packed bit tail all get
  // hit; the parser must return a chunk or throw runtime_error.
  for (std::size_t off = 0; off < full.size(); ++off) {
    for (const std::uint8_t m :
         {static_cast<std::uint8_t>(full[off] ^ 0x80),
          static_cast<std::uint8_t>(0x00), static_cast<std::uint8_t>(0xFF)}) {
      std::vector<std::uint8_t> mut = full;
      mut[off] = m;
      parse_must_not_crash(mut, "mutated byte");
    }
  }
}

TEST(ChunkIoFuzz, RandomMultiByteMutationsNeverCrash) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const std::vector<std::uint8_t> full = serialize_chunk(make_chunk(c, 2, 6));
  const std::uint64_t fuzz_seed = test::sweep_seed(0xC4);
  SCOPED_TRACE("fuzz_seed=" + std::to_string(fuzz_seed));
  crypto::Prg prg(Block{fuzz_seed, 0x0E});
  const int n_trials = test::sweep_trials(400);
  for (int trial = 0; trial < n_trials; ++trial) {
    std::vector<std::uint8_t> mut = full;
    const int edits = 1 + static_cast<int>(prg.next_u64() % 8);
    for (int e = 0; e < edits; ++e) {
      const std::size_t off = prg.next_u64() % mut.size();
      mut[off] ^= static_cast<std::uint8_t>(prg.next_u64() | 1);
    }
    // Also sometimes truncate after mutating.
    if (trial % 3 == 0) mut.resize(prg.next_u64() % (mut.size() + 1));
    parse_must_not_crash(mut, "random mutation");
  }
}

TEST(ChunkIoFuzz, HostileCountPrefixesRejectedBeforeAllocation) {
  // Hand-built header: magic, scheme, first_round, then a lying round
  // count.
  const auto header_with_round_count = [](std::uint64_t n_rounds) {
    std::vector<std::uint8_t> b;
    const char magic[8] = {'M', 'X', 'C', 'H', 'N', 'K', '1', '\0'};
    b.insert(b.end(), magic, magic + 8);
    b.push_back(0);  // scheme = half-gates
    for (int i = 0; i < 8; ++i) b.push_back(0);  // first_round = 0
    for (int i = 0; i < 8; ++i)
      b.push_back(static_cast<std::uint8_t>(n_rounds >> (8 * i)));
    return b;
  };

  // Counts beyond the cap are rejected by value, before any allocation.
  for (const std::uint64_t lie : {~std::uint64_t{0}, ~std::uint64_t{0} / 2,
                                  std::uint64_t{kMaxChunkRounds + 1}}) {
    const auto b = header_with_round_count(lie);
    EXPECT_THROW((void)parse_chunk(b.data(), b.size()), ChunkFormatError)
        << "round count " << lie;
  }

  // A count at the cap passes validation but the bytes end immediately:
  // remaining-bytes checks mean this fails fast on EOF instead of
  // reserving cap-many rounds up front.
  const auto at_cap = header_with_round_count(kMaxChunkRounds);
  EXPECT_THROW((void)parse_chunk(at_cap.data(), at_cap.size()),
               ChunkFormatError);

  // Same discipline one level down: plausible round count, hostile
  // table count inside the round.
  auto nested = header_with_round_count(1);
  for (int i = 0; i < 8; ++i) nested.push_back(0xFF);  // table count ~0
  EXPECT_THROW((void)parse_chunk(nested.data(), nested.size()),
               ChunkFormatError);
}

}  // namespace
}  // namespace maxel::proto
