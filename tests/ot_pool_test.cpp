// Cross-session correlated-OT pool (ot/pool.hpp): correlation algebra,
// derandomized label transfer, claim accounting (never-reuse), and the
// client-side replay watermark.
#include <gtest/gtest.h>

#include <set>

#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "ot/pool.hpp"
#include "proto/channel.hpp"

namespace maxel::ot {
namespace {

using crypto::Block;
using crypto::SystemRandom;
using proto::MemoryChannel;

struct PoolPair {
  std::unique_ptr<MemoryChannel> s_ch, r_ch;
  SystemRandom s_rng;
  SystemRandom r_rng;
  Block delta;
  std::unique_ptr<CorrelatedPoolSender> sender;
  CorrelatedPoolReceiver receiver;

  explicit PoolPair(std::uint64_t seed = 7)
      : s_rng(Block{1, seed}), r_rng(Block{3, seed}) {
    auto [a, b] = MemoryChannel::create_pair();
    s_ch = std::move(a);
    r_ch = std::move(b);
    SystemRandom d_rng(Block{seed, 0xD317A});
    delta = d_rng.next_block();
    delta.lo |= 1;
    sender = std::make_unique<CorrelatedPoolSender>(delta, /*pool_id=*/seed);
    pool_base_setup(*sender, receiver, *s_ch, *r_ch, s_rng, r_rng);
  }

  void extend(std::size_t n) {
    receiver.extend(*r_ch, n);
    sender->extend(*s_ch, n);
  }
};

TEST(OtPool, CorrelationHoldsForEveryIndex) {
  PoolPair p;
  p.extend(300);  // deliberately not a multiple of 8
  ASSERT_EQ(p.sender->extended(), 300u);
  ASSERT_EQ(p.receiver.extended(), 300u);
  for (std::uint64_t j = 0; j < 300; ++j) {
    const Block q = p.sender->pad(j);
    const Block t = p.receiver.pad(j);
    if (p.receiver.choice(j))
      EXPECT_EQ((t ^ q).hex(), p.delta.hex()) << "index " << j;
    else
      EXPECT_EQ(t.hex(), q.hex()) << "index " << j;
  }
}

TEST(OtPool, DerandomizedTransferYieldsActiveLabel) {
  // The session-layer use: server wants the client to end up with
  // L0 ^ c*delta for the client's true choice c.
  PoolPair p;
  p.extend(64);
  crypto::Prg data(Block{0xC0, 0x1C});
  for (std::uint64_t j = 0; j < 64; ++j) {
    const bool c = data.next_bit();
    const Block l0 = data.next_block();
    const bool d = c != p.receiver.choice(j);  // client reveals d = c ^ r
    Block z = p.sender->pad(j) ^ l0;
    if (d) z ^= p.sender->delta();
    const Block got = p.receiver.pad(j) ^ z;
    const Block want = c ? l0 ^ p.delta : l0;
    EXPECT_EQ(got.hex(), want.hex()) << "index " << j;
  }
}

TEST(OtPool, MultipleExtensionsStayConsistent) {
  PoolPair p;
  p.extend(128);
  p.extend(17);
  p.extend(8192);
  ASSERT_EQ(p.sender->extended(), 128u + 17 + 8192);
  for (const std::uint64_t j : {0ull, 127ull, 128ull, 144ull, 8336ull}) {
    const Block want = p.receiver.choice(j) ? p.sender->pad(j) ^ p.delta
                                            : p.sender->pad(j);
    EXPECT_EQ(p.receiver.pad(j).hex(), want.hex()) << "index " << j;
  }
}

TEST(OtPool, ClaimsAreMonotoneAndNeverOverlap) {
  PoolPair p;
  p.extend(256);
  std::set<std::uint64_t> handed_out;
  const PoolClaim a = p.sender->claim(100);
  const PoolClaim b = p.sender->claim(50);
  for (const auto& c : {a, b})
    for (std::uint64_t j = c.start; j < c.start + c.count; ++j)
      EXPECT_TRUE(handed_out.insert(j).second) << "index reused: " << j;
  const PoolStats st = p.sender->stats();
  EXPECT_EQ(st.claimed, 150u);
  EXPECT_EQ(st.available(), 106u);
  p.sender->consume(a);
  p.sender->discard(b);
  const PoolStats st2 = p.sender->stats();
  EXPECT_EQ(st2.claimed, 0u);
  EXPECT_EQ(st2.consumed, 100u);
  EXPECT_EQ(st2.discarded, 50u);
  // A discarded range is burned: the next claim starts above it.
  const PoolClaim c = p.sender->claim(10);
  EXPECT_GE(c.start, b.start + b.count);
}

TEST(OtPool, ExhaustionAndBadCountsAreTyped) {
  PoolPair p;
  p.extend(32);
  EXPECT_THROW((void)p.sender->claim(33), std::runtime_error);
  EXPECT_THROW(p.receiver.extend(*p.r_ch, 0), std::runtime_error);
  EXPECT_THROW(p.receiver.extend(*p.r_ch, kMaxPoolExtend + 1),
               std::runtime_error);
  EXPECT_THROW(p.sender->extend(*p.s_ch, 0), std::runtime_error);
  CorrelatedPoolSender cold(Block{1, 0}, 0);
  EXPECT_THROW(cold.extend(*p.s_ch, 8), std::logic_error);
  CorrelatedPoolReceiver cold_r;
  EXPECT_THROW(cold_r.extend(*p.r_ch, 8), std::logic_error);
  EXPECT_THROW(CorrelatedPoolSender(Block{2, 0}, 0), std::invalid_argument);
}

TEST(OtPool, WatermarkRejectsReplayAndOverrun) {
  PoolPair p;
  p.extend(128);
  p.receiver.mark_consumed(0, 40);
  EXPECT_EQ(p.receiver.watermark(), 40u);
  // Replay of any index below the watermark aborts.
  EXPECT_THROW(p.receiver.mark_consumed(39, 1), std::runtime_error);
  EXPECT_THROW(p.receiver.mark_consumed(0, 128), std::runtime_error);
  // Gaps are fine (server burned a claim on a failed session).
  p.receiver.mark_consumed(64, 32);
  EXPECT_EQ(p.receiver.watermark(), 96u);
  // Past the materialized end.
  EXPECT_THROW(p.receiver.mark_consumed(120, 9), std::runtime_error);
}

TEST(OtPool, DiscardedClaimNeverResurfaces) {
  // The retry story: a session claims, dies, the pool discards; the next
  // session's claim must sit strictly above — byte-for-byte fresh pads.
  PoolPair p;
  p.extend(512);
  const PoolClaim dead = p.sender->claim(128);
  std::vector<Block> dead_pads;
  for (std::uint64_t j = dead.start; j < dead.start + dead.count; ++j)
    dead_pads.push_back(p.sender->pad(j));
  p.sender->discard(dead);
  const PoolClaim retry = p.sender->claim(128);
  EXPECT_EQ(retry.start, dead.start + dead.count);
  for (std::uint64_t j = retry.start; j < retry.start + retry.count; ++j)
    for (const Block& old : dead_pads)
      EXPECT_FALSE(p.sender->pad(j) == old);
}

TEST(OtPool, PadsLookIndependentAcrossPools) {
  // Two pools with the same delta still derive unrelated pads (base OT
  // randomness), and within a pool pads never repeat.
  PoolPair a(11), b(12);
  a.extend(64);
  b.extend(64);
  std::set<std::string> seen;
  for (std::uint64_t j = 0; j < 64; ++j) {
    EXPECT_TRUE(seen.insert(a.sender->pad(j).hex()).second);
    EXPECT_TRUE(seen.insert(b.sender->pad(j).hex()).second);
  }
}

}  // namespace
}  // namespace maxel::ot
