// The garble-while-transfer producer: chunk order and coverage, end-to-
// end correctness of a chunked session against the plaintext MAC fold,
// determinism across identically-seeded garblers, the queue's
// backpressure residency bound, and clean teardown when the consumer
// abandons the stream mid-session.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "gc/garble.hpp"
#include "gc/streaming_garbler.hpp"

namespace maxel::gc {
namespace {

using circuit::MacOptions;
using crypto::Block;

StreamingGarbler::Options opts(std::size_t chunk_rounds,
                               std::size_t queue_chunks) {
  StreamingGarbler::Options o;
  o.chunk_rounds = chunk_rounds;
  o.queue_chunks = queue_chunks;
  return o;
}

TEST(StreamGarbler, ChunksArriveInOrderAndCoverEveryRound) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const std::size_t rounds = 10;  // 4 + 4 + 2: exercises the short tail
  StreamingGarbler sg(c, Scheme::kHalfGates, rounds, opts(4, 2), Block{1, 2});

  SessionChunk chunk;
  std::size_t next_round = 0, chunks = 0;
  while (sg.next_chunk(chunk)) {
    EXPECT_EQ(chunk.first_round, next_round);
    EXPECT_LE(chunk.rounds.size(), 4u);
    // Round-0 DFF state labels ride on chunk 0 and only chunk 0.
    EXPECT_EQ(chunk.initial_state_labels.empty(), next_round != 0);
    next_round += chunk.rounds.size();
    ++chunks;
  }
  EXPECT_EQ(next_round, rounds);
  EXPECT_EQ(chunks, 3u);
  // Exhausted streams stay exhausted.
  EXPECT_FALSE(sg.next_chunk(chunk));
}

// Full-session correctness: every chunked round evaluates and decodes to
// the plaintext MAC fold, with DFF state labels carried across chunk
// boundaries exactly as they are across round boundaries.
TEST(StreamGarbler, ChunkedSessionEvaluatesToReferenceMac) {
  const MacOptions mac{8, 8, true};
  const circuit::Circuit c = circuit::make_mac_circuit(mac);
  const std::size_t rounds = 11;
  StreamingGarbler sg(c, Scheme::kHalfGates, rounds, opts(3, 2), Block{7, 9});
  CircuitEvaluator ev(c, Scheme::kHalfGates);

  crypto::Prg prg(Block{5, 5});
  std::uint64_t expect = 0, decoded = 0;
  std::size_t done = 0;
  SessionChunk chunk;
  while (sg.next_chunk(chunk)) {
    if (chunk.first_round == 0)
      ev.set_initial_state_labels(chunk.initial_state_labels);
    for (const RoundMaterial& rm : chunk.rounds) {
      const std::uint64_t a = prg.next_u64() & 0xFF;
      const std::uint64_t x = prg.next_u64() & 0xFF;
      expect = circuit::mac_reference(expect, a, x, mac);

      // Garbler side: select active input labels with the input bits.
      const auto a_bits = circuit::to_bits(a, 8);
      std::vector<Block> g_labels = rm.garbler_labels0;
      for (std::size_t i = 0; i < g_labels.size(); ++i)
        if (a_bits[i]) g_labels[i] ^= sg.delta();
      // Evaluator side: what OT would deliver for choice bits x.
      const auto x_bits = circuit::to_bits(x, 8);
      std::vector<Block> e_labels;
      e_labels.reserve(rm.evaluator_pairs.size());
      for (std::size_t i = 0; i < rm.evaluator_pairs.size(); ++i)
        e_labels.push_back(x_bits[i] ? rm.evaluator_pairs[i].second
                                     : rm.evaluator_pairs[i].first);

      const auto out =
          ev.eval_round(rm.tables, g_labels, e_labels, rm.fixed_labels);
      decoded = circuit::from_bits(decode_with_map(out, rm.output_map));
      ++done;
    }
  }
  EXPECT_EQ(done, rounds);
  EXPECT_EQ(decoded, expect);
}

// Two identically-seeded streaming garblers emit bit-identical chunks —
// the property the bench leans on when it compares modes, and the
// reason a resumed/retried session cannot silently diverge.
TEST(StreamGarbler, IdenticalSeedsProduceIdenticalChunks) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(8);
  const std::size_t rounds = 6;
  StreamingGarbler a(c, Scheme::kGrr3, rounds, opts(2, 2), Block{42, 43});
  StreamingGarbler b(c, Scheme::kGrr3, rounds, opts(2, 2), Block{42, 43});
  EXPECT_EQ(a.delta(), b.delta());

  SessionChunk ca, cb;
  while (a.next_chunk(ca)) {
    ASSERT_TRUE(b.next_chunk(cb));
    ASSERT_EQ(ca.rounds.size(), cb.rounds.size());
    for (std::size_t r = 0; r < ca.rounds.size(); ++r) {
      EXPECT_EQ(ca.rounds[r].tables.tables, cb.rounds[r].tables.tables);
      EXPECT_EQ(ca.rounds[r].garbler_labels0, cb.rounds[r].garbler_labels0);
      EXPECT_EQ(ca.rounds[r].evaluator_pairs, cb.rounds[r].evaluator_pairs);
      EXPECT_EQ(ca.rounds[r].output_map, cb.rounds[r].output_map);
    }
  }
  EXPECT_FALSE(b.next_chunk(cb));
}

// The memory claim the streaming mode exists for: with a deliberately
// slow consumer, residency saturates at the backpressure bound — queued
// chunks plus the one in service — instead of growing with the session.
TEST(StreamGarbler, BackpressureBoundsResidentTables) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const std::size_t rounds = 12, chunk_rounds = 1, queue_chunks = 2;
  StreamingGarbler sg(c, Scheme::kHalfGates, rounds,
                      opts(chunk_rounds, queue_chunks), Block{3, 4});

  std::uint64_t tables_per_round = 0;
  SessionChunk chunk;
  while (sg.next_chunk(chunk)) {
    if (tables_per_round == 0)
      tables_per_round = chunk.rounds.front().tables.tables.size();
    // Slow consumer: let the producer run ahead into the queue bound.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  ASSERT_GT(tables_per_round, 0u);
  EXPECT_LE(sg.peak_queue_depth(), queue_chunks);
  // queued (<= queue_chunks chunks) + the popped chunk still in service.
  EXPECT_LE(sg.peak_resident_tables(),
            (queue_chunks + 1) * chunk_rounds * tables_per_round);
  // Far below the precomputed path's whole-session residency.
  EXPECT_LT(sg.peak_resident_tables(), rounds * tables_per_round);
}

// Client hangup mid-stream: destroying the garbler with chunks undrained
// must close the queue, unblock the producer and join — no deadlock,
// no leaked thread (tsan runs this suite).
TEST(StreamGarbler, AbandoningMidStreamJoinsCleanly) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  StreamingGarbler sg(c, Scheme::kHalfGates, 200, opts(1, 2), Block{8, 8});
  SessionChunk chunk;
  ASSERT_TRUE(sg.next_chunk(chunk));  // producer is certainly running
  // Destructor does the rest.
}

TEST(ChunkQueue, CloseDrainsThenReportsEnd) {
  ChunkQueue q(2);
  SessionChunk c;
  c.first_round = 7;
  EXPECT_TRUE(q.push(std::move(c)));
  q.close();

  SessionChunk out;
  EXPECT_TRUE(q.pop(out));  // queued data survives close
  EXPECT_EQ(out.first_round, 7u);
  EXPECT_FALSE(q.pop(out));  // drained + closed

  SessionChunk late;
  EXPECT_FALSE(q.push(std::move(late)));  // producers see the close
}

}  // namespace
}  // namespace maxel::gc
