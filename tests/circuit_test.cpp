// Unit and property tests for the netlist IR and the circuit builders:
// exhaustive sweeps at small widths, randomized checks at larger widths,
// gate-count invariants (the 1-AND-per-bit adder), and the reference
// wraparound MAC semantics.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/circuits.hpp"
#include "circuit/netlist.hpp"
#include "crypto/prg.hpp"

namespace maxel::circuit {
namespace {

using crypto::Prg;

std::uint64_t mask_of(std::size_t w) {
  return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

// Evaluates a combinational circuit on integer inputs split between the
// two parties (each party holds one bus, LSB-first, bus width inferred).
std::uint64_t run_word_circuit(const Circuit& c, std::uint64_t g_val,
                               std::uint64_t e_val) {
  const auto out = eval_plain(c, to_bits(g_val, c.garbler_inputs.size()),
                              to_bits(e_val, c.evaluator_inputs.size()));
  return from_bits(out);
}

TEST(GateSemantics, TruthTables) {
  EXPECT_EQ(eval_gate(GateType::kXor, false, true), true);
  EXPECT_EQ(eval_gate(GateType::kXnor, true, true), true);
  EXPECT_EQ(eval_gate(GateType::kAnd, true, true), true);
  EXPECT_EQ(eval_gate(GateType::kAnd, true, false), false);
  EXPECT_EQ(eval_gate(GateType::kNand, true, true), false);
  EXPECT_EQ(eval_gate(GateType::kOr, false, false), false);
  EXPECT_EQ(eval_gate(GateType::kOr, true, false), true);
  EXPECT_EQ(eval_gate(GateType::kNor, false, false), true);
}

TEST(GateSemantics, AndFormMatchesEveryNonXorType) {
  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor}) {
    const AndForm f = and_form(t);
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const bool expect = eval_gate(t, a != 0, b != 0);
        const bool got = (((a != 0) != f.alpha) && ((b != 0) != f.beta)) !=
                         f.gamma;
        EXPECT_EQ(got, expect);
      }
    }
  }
}

TEST(Builder, ConstantFoldingEmitsNoGates) {
  Builder b;
  const Wire x = b.garbler_input();
  EXPECT_EQ(b.xor_(x, Builder::const0()), x);
  EXPECT_EQ(b.and_(x, Builder::const1()), x);
  EXPECT_EQ(b.and_(x, Builder::const0()), Builder::const0());
  EXPECT_EQ(b.or_(x, Builder::const0()), x);
  EXPECT_EQ(b.or_(x, Builder::const1()), Builder::const1());
  EXPECT_EQ(b.xor_(x, x), Builder::const0());
  EXPECT_EQ(b.and_(x, x), x);
  EXPECT_EQ(b.circuit().gates.size(), 0u);
}

TEST(Builder, NotIsFree) {
  Builder b;
  const Wire x = b.garbler_input();
  const Wire nx = b.not_(x);
  b.set_outputs({nx});
  const Circuit c = b.take();
  EXPECT_EQ(c.and_count(), 0u);
  EXPECT_EQ(from_bits(eval_plain(c, {true}, {})), 0u);
  EXPECT_EQ(from_bits(eval_plain(c, {false}, {})), 1u);
}

TEST(Builder, MuxSelectsExhaustively) {
  Builder b;
  const Wire s = b.garbler_input();
  const Wire x = b.evaluator_input();
  const Wire y = b.evaluator_input();
  b.set_outputs({b.mux(s, x, y)});
  const Circuit c = b.take();
  EXPECT_EQ(c.and_count(), 1u);  // 1 AND per mux bit
  for (int s_v = 0; s_v < 2; ++s_v) {
    for (int x_v = 0; x_v < 2; ++x_v) {
      for (int y_v = 0; y_v < 2; ++y_v) {
        const auto out =
            eval_plain(c, {s_v != 0}, {x_v != 0, y_v != 0});
        EXPECT_EQ(out[0], s_v != 0 ? x_v != 0 : y_v != 0);
      }
    }
  }
}

class AdderWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderWidth, ExhaustiveOrRandomMatchesIntegerAdd) {
  const std::size_t w = GetParam();
  Builder b;
  const Bus a = b.garbler_inputs(w);
  const Bus x = b.evaluator_inputs(w);
  b.set_outputs(b.add(a, x));
  const Circuit c = b.take();

  // TinyGarble-optimized adder: exactly one AND per bit except the MSB
  // (whose carry-out is dropped).
  EXPECT_EQ(c.and_count(), w - 1);

  const std::uint64_t m = mask_of(w);
  if (w <= 5) {
    for (std::uint64_t i = 0; i <= m; ++i)
      for (std::uint64_t j = 0; j <= m; ++j)
        EXPECT_EQ(run_word_circuit(c, i, j), (i + j) & m);
  } else {
    Prg prg(crypto::Block{w, 1});
    for (int t = 0; t < 200; ++t) {
      const std::uint64_t i = prg.next_u64() & m;
      const std::uint64_t j = prg.next_u64() & m;
      EXPECT_EQ(run_word_circuit(c, i, j), (i + j) & m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 32, 48));

TEST(Builder, SubMatchesIntegerSub) {
  constexpr std::size_t w = 8;
  Builder b;
  const Bus a = b.garbler_inputs(w);
  const Bus x = b.evaluator_inputs(w);
  b.set_outputs(b.sub(a, x));
  const Circuit c = b.take();
  for (std::uint64_t i = 0; i < 256; i += 7)
    for (std::uint64_t j = 0; j < 256; j += 5)
      EXPECT_EQ(run_word_circuit(c, i, j), (i - j) & 0xFF);
}

TEST(Builder, NegateMatchesTwosComplement) {
  constexpr std::size_t w = 6;
  Builder b;
  const Bus a = b.garbler_inputs(w);
  b.set_outputs(b.negate(a));
  const Circuit c = b.take();
  for (std::uint64_t i = 0; i < 64; ++i)
    EXPECT_EQ(run_word_circuit(c, i, 0), (~i + 1) & 0x3F);
}

TEST(Builder, CondNegateBothBranches) {
  constexpr std::size_t w = 6;
  Builder b;
  const Bus a = b.garbler_inputs(w);
  const Wire s = b.evaluator_input();
  b.set_outputs(b.cond_negate(a, s));
  const Circuit c = b.take();
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(run_word_circuit(c, i, 0), i);
    EXPECT_EQ(run_word_circuit(c, i, 1), (~i + 1) & 0x3F);
  }
}

struct MulCase {
  std::size_t width;
  std::size_t out_width;
  bool is_signed;
  Builder::MulStructure structure;
};

class Multiplier : public ::testing::TestWithParam<MulCase> {};

TEST_P(Multiplier, MatchesReferenceProduct) {
  const MulCase p = GetParam();
  const MacOptions opt{p.width, p.out_width, p.is_signed, p.structure};
  const Circuit c = make_multiplier_circuit(opt);
  const std::uint64_t m = mask_of(p.width);

  const auto reference = [&](std::uint64_t a, std::uint64_t x) {
    return mac_reference(0, a, x, opt);
  };

  if (p.width <= 5) {
    for (std::uint64_t a = 0; a <= m; ++a)
      for (std::uint64_t x = 0; x <= m; ++x)
        ASSERT_EQ(run_word_circuit(c, a, x), reference(a, x))
            << "a=" << a << " x=" << x;
  } else {
    Prg prg(crypto::Block{p.width, p.is_signed ? 2u : 3u});
    for (int t = 0; t < 100; ++t) {
      const std::uint64_t a = prg.next_u64() & m;
      const std::uint64_t x = prg.next_u64() & m;
      ASSERT_EQ(run_word_circuit(c, a, x), reference(a, x))
          << "a=" << a << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, Multiplier,
    ::testing::Values(
        MulCase{4, 4, false, Builder::MulStructure::kSerial},
        MulCase{4, 4, false, Builder::MulStructure::kTree},
        MulCase{4, 8, false, Builder::MulStructure::kSerial},
        MulCase{4, 8, false, Builder::MulStructure::kTree},
        MulCase{5, 5, true, Builder::MulStructure::kSerial},
        MulCase{5, 5, true, Builder::MulStructure::kTree},
        MulCase{5, 10, true, Builder::MulStructure::kTree},
        MulCase{8, 8, true, Builder::MulStructure::kSerial},
        MulCase{8, 8, true, Builder::MulStructure::kTree},
        MulCase{8, 16, true, Builder::MulStructure::kTree},
        MulCase{16, 16, true, Builder::MulStructure::kTree},
        MulCase{16, 16, false, Builder::MulStructure::kSerial},
        MulCase{32, 32, true, Builder::MulStructure::kTree},
        MulCase{32, 32, false, Builder::MulStructure::kSerial}));

TEST(Multiplier, SignedMatchesIntegerProductMod2W) {
  // The mux/2's-complement sandwich must agree with the true signed
  // product mod 2^w for every input (including INT_MIN patterns).
  const MacOptions opt{4, 4, true, Builder::MulStructure::kTree};
  const Circuit c = make_multiplier_circuit(opt);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t x = 0; x < 16; ++x) {
      const std::int64_t sa = from_bits_signed(to_bits(a, 4));
      const std::int64_t sx = from_bits_signed(to_bits(x, 4));
      const std::uint64_t expect =
          static_cast<std::uint64_t>(sa * sx) & 0xF;
      ASSERT_EQ(run_word_circuit(c, a, x), expect) << "a=" << sa << " x=" << sx;
    }
  }
}

TEST(Multiplier, TreeAndSerialComputeTheSameFunction) {
  for (std::size_t w : {6u, 8u, 12u}) {
    const MacOptions serial{w, w, true, Builder::MulStructure::kSerial};
    const MacOptions tree{w, w, true, Builder::MulStructure::kTree};
    const Circuit cs = make_multiplier_circuit(serial);
    const Circuit ct = make_multiplier_circuit(tree);
    Prg prg(crypto::Block{w, 17});
    const std::uint64_t m = mask_of(w);
    for (int t = 0; t < 64; ++t) {
      const std::uint64_t a = prg.next_u64() & m;
      const std::uint64_t x = prg.next_u64() & m;
      ASSERT_EQ(run_word_circuit(cs, a, x), run_word_circuit(ct, a, x));
    }
  }
}

TEST(Multiplier, TreeDecomposesIntoIndependentPartialSums) {
  // The paper's Fig. 2 advantage is schedulability, not combinational
  // depth: the b/2 MUX_ADD partial-sum streams are mutually independent.
  // In netlist terms: the tree multiplier has at least b/2 AND gates at
  // multiplicative depth 0 per operand pair (the partial products), and
  // the number of depth-0 ANDs is no smaller than the serial structure's.
  for (std::size_t w : {8u, 16u, 32u}) {
    const MacOptions tree{w, w, false, Builder::MulStructure::kTree};
    const Circuit c = make_multiplier_circuit(tree);
    std::vector<std::size_t> depth(c.num_wires, 0);
    std::size_t depth0_ands = 0;
    for (const auto& g : c.gates) {
      const std::size_t in = std::max(depth[g.a], depth[g.b]);
      depth[g.out] = in + (is_free(g.type) ? 0 : 1);
      if (!is_free(g.type) && in == 0) ++depth0_ands;
    }
    EXPECT_GE(depth0_ands, w / 2) << "width " << w;
  }
}

TEST(Multiplier, AndCountGrowsQuadratically) {
  for (const auto structure :
       {Builder::MulStructure::kSerial, Builder::MulStructure::kTree}) {
    const auto count = [&](std::size_t w) {
      return make_multiplier_circuit(MacOptions{w, w, false, structure})
          .and_count();
    };
    // Doubling the width should roughly quadruple the AND count.
    const double r16 = static_cast<double>(count(16)) / count(8);
    const double r32 = static_cast<double>(count(32)) / count(16);
    EXPECT_GT(r16, 3.0);
    EXPECT_LT(r16, 6.0);
    EXPECT_GT(r32, 3.0);
    EXPECT_LT(r32, 6.0);
  }
}


class KaratsubaWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KaratsubaWidth, MatchesSchoolbookProduct) {
  const std::size_t w = GetParam();
  Builder b;
  const Bus a = b.garbler_inputs(w);
  const Bus x = b.evaluator_inputs(w);
  b.set_outputs(b.mult_karatsuba(a, x, 2 * w));
  const Circuit c = b.take();
  const std::uint64_t m = mask_of(w);
  if (w <= 5) {
    for (std::uint64_t i = 0; i <= m; ++i)
      for (std::uint64_t j = 0; j <= m; ++j)
        ASSERT_EQ(run_word_circuit(c, i, j), i * j) << i << "*" << j;
  } else {
    Prg prg(crypto::Block{w, 0x4A});
    for (int t = 0; t < 100; ++t) {
      const std::uint64_t i = prg.next_u64() & m;
      const std::uint64_t j = prg.next_u64() & m;
      ASSERT_EQ(run_word_circuit(c, i, j) & mask_of(std::min<std::size_t>(64, 2 * w)),
                (i * j) & mask_of(std::min<std::size_t>(64, 2 * w)))
          << i << "*" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KaratsubaWidth,
                         ::testing::Values(3, 5, 8, 12, 16, 24, 32));

TEST(Karatsuba, TruncatedWidthMatchesSerial) {
  Builder b1, b2;
  const Bus a1 = b1.garbler_inputs(16), x1 = b1.evaluator_inputs(16);
  b1.set_outputs(b1.mult_karatsuba(a1, x1, 16));
  const Circuit ck = b1.take();
  const Bus a2 = b2.garbler_inputs(16), x2 = b2.evaluator_inputs(16);
  b2.set_outputs(b2.mult_serial(a2, x2, 16));
  const Circuit cs = b2.take();
  Prg prg(crypto::Block{0x4B, 1});
  for (int t = 0; t < 60; ++t) {
    const std::uint64_t i = prg.next_u64() & 0xFFFF;
    const std::uint64_t j = prg.next_u64() & 0xFFFF;
    ASSERT_EQ(run_word_circuit(ck, i, j), run_word_circuit(cs, i, j));
  }
}

TEST(Karatsuba, BeatsSchoolbookAtLargeWidths) {
  const auto ands = [](std::size_t w, bool kara) {
    Builder b;
    const Bus a = b.garbler_inputs(w), x = b.evaluator_inputs(w);
    b.set_outputs(kara ? b.mult_karatsuba(a, x, 2 * w)
                       : b.mult_serial(a, x, 2 * w));
    return b.take().and_count();
  };
  // Small widths: schoolbook wins (Karatsuba's linear combines dominate).
  EXPECT_GE(ands(8, true), ands(8, false));
  // Large widths: the three-multiplications recursion wins.
  EXPECT_LT(ands(64, true), ands(64, false));
}

TEST(Millionaires, ExhaustiveAt4Bits) {
  const Circuit c = make_millionaires_circuit(4);
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b)
      EXPECT_EQ(run_word_circuit(c, a, b), a < b ? 1u : 0u);
}

TEST(Builder, EqComparator) {
  Builder b;
  const Bus a = b.garbler_inputs(6);
  const Bus x = b.evaluator_inputs(6);
  b.set_outputs({b.eq(a, x)});
  const Circuit c = b.take();
  Prg prg(crypto::Block{66, 0});
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t i = prg.next_u64() & 0x3F;
    const std::uint64_t j = t % 2 == 0 ? i : (prg.next_u64() & 0x3F);
    EXPECT_EQ(run_word_circuit(c, i, j), i == j ? 1u : 0u);
  }
}


TEST(FixedMac, InCircuitRescalingMatchesReference) {
  const MacOptions opt{8, 16, true, Builder::MulStructure::kTree};
  const std::size_t frac = 4;
  const Circuit c = make_fixed_mac_circuit(opt, frac);
  ASSERT_TRUE(c.is_sequential());
  ASSERT_EQ(c.dffs.size(), 16u);
  ASSERT_EQ(c.outputs.size(), 8u);

  Prg prg(crypto::Block{0xF1D0, 1});
  std::vector<RoundInputs> rounds(10);
  std::vector<std::uint64_t> av(10), xv(10);
  for (std::size_t i = 0; i < 10; ++i) {
    av[i] = prg.next_u64() & 0xFF;
    xv[i] = prg.next_u64() & 0xFF;
    rounds[i].garbler_bits = to_bits(av[i], 8);
    rounds[i].evaluator_bits = to_bits(xv[i], 8);
  }
  EXPECT_EQ(from_bits(eval_sequential_plain(c, rounds)),
            fixed_dot_reference(av, xv, opt, frac));
}

TEST(FixedMac, RealValueSemantics) {
  // Small real values: the rescaled output equals the quantized dot.
  const MacOptions opt{16, 32, true, Builder::MulStructure::kTree};
  const std::size_t frac = 6;
  const Circuit c = make_fixed_mac_circuit(opt, frac);
  const double scale = 64.0;  // 2^frac
  const std::vector<double> a = {1.5, -2.25, 0.5};
  const std::vector<double> x = {2.0, 1.0, -4.0};
  std::vector<RoundInputs> rounds(3);
  std::vector<std::uint64_t> av(3), xv(3);
  for (std::size_t i = 0; i < 3; ++i) {
    av[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(a[i] * scale)) &
            0xFFFF;
    xv[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(x[i] * scale)) &
            0xFFFF;
    rounds[i].garbler_bits = to_bits(av[i], 16);
    rounds[i].evaluator_bits = to_bits(xv[i], 16);
  }
  const auto out = eval_sequential_plain(c, rounds);
  const double got =
      static_cast<double>(from_bits_signed(out)) / scale;
  // 1.5*2 - 2.25*1 + 0.5*(-4) = -1.25
  EXPECT_NEAR(got, -1.25, 1.0 / scale);
}

TEST(FixedMac, RejectsBadConfigs) {
  EXPECT_THROW((void)make_fixed_mac_circuit(MacOptions{8, 8, true}, 2),
               std::invalid_argument);  // acc too narrow
  EXPECT_THROW((void)make_fixed_mac_circuit(MacOptions{8, 16, true}, 8),
               std::invalid_argument);  // frac >= b
}

TEST(SequentialMac, MatchesReferenceOverRounds) {
  for (const auto structure :
       {Builder::MulStructure::kSerial, Builder::MulStructure::kTree}) {
    const MacOptions opt{8, 8, true, structure};
    const Circuit c = make_mac_circuit(opt);
    ASSERT_TRUE(c.is_sequential());
    ASSERT_EQ(c.dffs.size(), 8u);

    Prg prg(crypto::Block{88, 4});
    std::vector<RoundInputs> rounds(16);
    std::uint64_t expect = 0;
    for (auto& r : rounds) {
      const std::uint64_t a = prg.next_u64() & 0xFF;
      const std::uint64_t x = prg.next_u64() & 0xFF;
      r.garbler_bits = to_bits(a, 8);
      r.evaluator_bits = to_bits(x, 8);
      expect = mac_reference(expect, a, x, opt);
    }
    EXPECT_EQ(from_bits(eval_sequential_plain(c, rounds)), expect);
  }
}

TEST(SequentialMac, WideAccumulator) {
  const MacOptions opt{8, 20, true, Builder::MulStructure::kTree};
  const Circuit c = make_mac_circuit(opt);
  ASSERT_EQ(c.dffs.size(), 20u);
  Prg prg(crypto::Block{77, 0});
  std::vector<RoundInputs> rounds(32);
  std::uint64_t expect = 0;
  for (auto& r : rounds) {
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    r.garbler_bits = to_bits(a, 8);
    r.evaluator_bits = to_bits(x, 8);
    expect = mac_reference(expect, a, x, opt);
  }
  EXPECT_EQ(from_bits(eval_sequential_plain(c, rounds)), expect);
}

TEST(DotProduct, CombinationalMatchesSequentialSemantics) {
  const MacOptions opt{6, 6, true, Builder::MulStructure::kTree};
  const std::size_t n = 5;
  const Circuit c = make_dot_product_circuit(n, opt);
  Prg prg(crypto::Block{55, 0});
  std::vector<std::uint64_t> a(n), x(n);
  std::vector<bool> g_bits, e_bits;
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = prg.next_u64() & 0x3F;
    x[i] = prg.next_u64() & 0x3F;
    const auto ab = to_bits(a[i], 6);
    const auto xb = to_bits(x[i], 6);
    g_bits.insert(g_bits.end(), ab.begin(), ab.end());
    e_bits.insert(e_bits.end(), xb.begin(), xb.end());
  }
  EXPECT_EQ(from_bits(eval_plain(c, g_bits, e_bits)),
            dot_reference(a, x, opt));
}

TEST(Netlist, AndDepthOfPureXorCircuitIsZero) {
  Builder b;
  const Bus a = b.garbler_inputs(8);
  const Bus x = b.evaluator_inputs(8);
  b.set_outputs(b.xor_bus(a, x));
  EXPECT_EQ(and_depth(b.take()), 0u);
}

TEST(Netlist, HistogramAccountsEveryGate) {
  const MacOptions opt{8, 8, true, Builder::MulStructure::kTree};
  const Circuit c = make_mac_circuit(opt);
  const GateHistogram h = histogram(c);
  EXPECT_EQ(h.xor_gates + h.xnor_gates + h.and_gates + h.nand_gates +
                h.or_gates + h.nor_gates,
            c.gates.size());
  EXPECT_EQ(h.and_gates + h.nand_gates + h.or_gates + h.nor_gates,
            c.and_count());
}

TEST(Netlist, UnconnectedDffThrows) {
  Builder b;
  (void)b.make_dff();
  EXPECT_THROW((void)b.take(), std::logic_error);
}

TEST(Netlist, InputArityMismatchThrows) {
  Builder b;
  (void)b.garbler_inputs(4);
  b.set_outputs({Builder::const0()});
  const Circuit c = b.take();
  EXPECT_THROW((void)eval_plain(c, {true}, {}), std::invalid_argument);
}

TEST(BitHelpers, RoundTrips) {
  EXPECT_EQ(from_bits(to_bits(0xDEADBEEF, 32)), 0xDEADBEEFu);
  EXPECT_EQ(from_bits_signed(to_bits(0xF, 4)), -1);
  EXPECT_EQ(from_bits_signed(to_bits(7, 4)), 7);
  EXPECT_EQ(from_bits_signed(to_bits(8, 4)), -8);
}

// ---- multi-consumer fanout under wide (>64-wire) operands ----------------
// The 128/256-bit Montgomery netlists reuse one accumulator bus as an
// operand of several word ops per step; nothing below 64 wires ever
// exercised that. These tests pin the builder/evaluator contract: a
// gate output consumed by many later gates — and listed among the
// outputs more than once — reads the same value everywhere, at widths
// where every bus spans multiple machine words.

std::vector<bool> random_bits(Prg& prg, std::size_t n) {
  return prg.bits(n);
}

std::vector<bool> add_bits(const std::vector<bool>& a,
                           const std::vector<bool>& b) {
  std::vector<bool> out(a.size());
  bool carry = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int s = int(a[i]) + int(b[i]) + int(carry);
    out[i] = (s & 1) != 0;
    carry = s >= 2;
  }
  return out;
}

TEST(WideFanout, SharedSumFeedsManyConsumersAt96Bits) {
  constexpr std::size_t kW = 96;
  Builder bld;
  const Bus a = bld.garbler_inputs(kW);
  const Bus b = bld.evaluator_inputs(kW);
  const Bus s = bld.add(a, b);          // shared intermediate, 96 wires
  const Bus d1 = bld.xor_bus(s, a);     // consumer 1
  const Bus d2 = bld.sub(s, b);         // consumer 2: (a+b)-b == a
  const Wire back = bld.eq(d2, a);      // consumer 3 (reads d2 AND a again)
  const Wire less = bld.lt_unsigned(s, a);  // consumer 4: carry-out probe
  bld.set_outputs(s);
  bld.append_outputs(d1);
  bld.append_outputs(d2);
  bld.append_outputs({back, less});
  bld.append_outputs(s);                // the SAME wires output twice
  const Circuit c = bld.take();
  ASSERT_EQ(c.outputs.size(), 4 * kW + 2);

  Prg prg(crypto::Block{0x96, 0xFA});
  for (int t = 0; t < 40; ++t) {
    const auto av = random_bits(prg, kW);
    const auto bv = random_bits(prg, kW);
    const auto out = eval_plain(c, av, bv);
    const auto sum = add_bits(av, bv);
    bool wrapped = false;  // a+b overflowed 2^96 <=> sum < a
    {
      bool carry = false;
      for (std::size_t i = 0; i < kW; ++i) {
        const int x = int(av[i]) + int(bv[i]) + int(carry);
        carry = x >= 2;
      }
      wrapped = carry;
    }
    for (std::size_t i = 0; i < kW; ++i) {
      EXPECT_EQ(out[i], sum[i]) << "s bit " << i;
      EXPECT_EQ(out[kW + i], sum[i] != av[i]) << "xor consumer bit " << i;
      EXPECT_EQ(out[2 * kW + i], av[i]) << "(a+b)-b must be a, bit " << i;
      EXPECT_EQ(out[3 * kW + 2 + i], out[i]) << "duplicated output bit " << i;
    }
    EXPECT_TRUE(out[3 * kW]) << "eq(d2, a) must hold";
    EXPECT_EQ(out[3 * kW + 1], wrapped) << "lt(s, a) <=> carry out";
  }
}

TEST(WideFanout, DffBusSharedByUpdateAndOutputsAt80Bits) {
  // An 80-bit DFF accumulator consumed by its own next-state adder, a
  // comparator, and the output list — per round, across rounds.
  constexpr std::size_t kW = 80;
  Builder bld;
  const Bus a = bld.garbler_inputs(kW);
  const Bus acc = bld.make_dff_bus(kW, 0);
  const Bus next = bld.add(acc, a);
  const Wire grew = bld.lt_unsigned(acc, next);  // false exactly on wrap
  bld.connect_dff_bus(acc, next);
  bld.set_outputs(next);
  bld.append_outputs({grew});
  const Circuit c = bld.take();

  Prg prg(crypto::Block{0x80, 0xFB});
  std::vector<bool> state(kW, false);
  std::vector<bool> model(kW, false);
  for (int r = 0; r < 50; ++r) {
    const auto av = random_bits(prg, kW);
    const auto out = eval_plain(c, av, {}, &state);
    const auto prev = model;
    model = add_bits(model, av);
    for (std::size_t i = 0; i < kW; ++i)
      ASSERT_EQ(out[i], model[i]) << "round " << r << " bit " << i;
    // grew <=> prev < prev + a (mod 2^80), i.e. no wraparound and a != 0.
    bool lt = false;
    for (std::size_t i = kW; i-- > 0;) {
      if (prev[i] != model[i]) {
        lt = !prev[i] && model[i];
        break;
      }
    }
    ASSERT_EQ(out[kW], lt) << "round " << r;
  }
}

}  // namespace
}  // namespace maxel::circuit
