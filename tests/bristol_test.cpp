// Bristol Fashion serialization: round trips for every builder circuit
// (export -> import -> semantic equivalence on random inputs), lowering
// of extended gate types, constants, and malformed-input handling.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/arith_ext.hpp"
#include "circuit/bristol.hpp"
#include "circuit/builder.hpp"
#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"

namespace maxel::circuit {
namespace {

using crypto::Prg;

void expect_equivalent(const Circuit& a, const Circuit& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.garbler_inputs.size(), b.garbler_inputs.size());
  ASSERT_EQ(a.evaluator_inputs.size(), b.evaluator_inputs.size());
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  Prg prg(crypto::Block{seed, 0xB1});
  for (int t = 0; t < 40; ++t) {
    const auto g = prg.bits(a.garbler_inputs.size());
    const auto e = prg.bits(a.evaluator_inputs.size());
    ASSERT_EQ(eval_plain(a, g, e), eval_plain(b, g, e)) << "trial " << t;
  }
}

TEST(Bristol, RoundTripAdder) {
  Builder bld;
  const Bus a = bld.garbler_inputs(8);
  const Bus x = bld.evaluator_inputs(8);
  bld.set_outputs(bld.add(a, x));
  const Circuit c = bld.take();
  expect_equivalent(c, from_bristol(to_bristol(c)), 1);
}

TEST(Bristol, RoundTripSignedMultiplier) {
  const Circuit c = make_multiplier_circuit(MacOptions{8, 8, true});
  expect_equivalent(c, from_bristol(to_bristol(c)), 2);
}

TEST(Bristol, RoundTripDivider) {
  const Circuit c = make_divider_circuit(6);
  expect_equivalent(c, from_bristol(to_bristol(c)), 3);
}

TEST(Bristol, RoundTripMillionaires) {
  const Circuit c = make_millionaires_circuit(12);
  expect_equivalent(c, from_bristol(to_bristol(c)), 4);
}

TEST(Bristol, LowersEveryExtendedGateType) {
  Builder bld;
  const Bus a = bld.garbler_inputs(2);
  const Bus x = bld.evaluator_inputs(2);
  Bus out;
  out.push_back(bld.gate(GateType::kNand, a[0], x[0]));
  out.push_back(bld.gate(GateType::kNor, a[1], x[1]));
  out.push_back(bld.gate(GateType::kOr, a[0], x[1]));
  out.push_back(bld.gate(GateType::kXnor, a[1], x[0]));
  bld.set_outputs(out);
  const Circuit c = bld.take();

  const std::string text = to_bristol(c);
  // Only Bristol primitives appear.
  EXPECT_EQ(text.find("NAND"), std::string::npos);
  EXPECT_EQ(text.find("NOR"), std::string::npos);
  EXPECT_NE(text.find("AND"), std::string::npos);
  EXPECT_NE(text.find("INV"), std::string::npos);
  expect_equivalent(c, from_bristol(text), 5);
}

TEST(Bristol, ConstantWiresSynthesized) {
  Builder bld;
  const Bus a = bld.garbler_inputs(4);
  // Force const usage: NOT gates (XNOR with const0) and a const bus add.
  Bus out = bld.add(a, bld.constant_bus(5, 4));
  out.push_back(bld.not_(a[0]));
  bld.set_outputs(out);
  const Circuit c = bld.take();
  expect_equivalent(c, from_bristol(to_bristol(c)), 6);
}

TEST(Bristol, OutputsAreFinalWires) {
  const Circuit c = make_millionaires_circuit(4);
  const std::string text = to_bristol(c);
  std::istringstream is(text);
  std::size_t gates = 0, wires = 0;
  is >> gates >> wires;
  // The single output must be wire wires-1, produced by the last line.
  std::string last_line, line;
  std::getline(is, line);
  while (std::getline(is, line))
    if (!line.empty()) last_line = line;
  std::istringstream gl(last_line);
  std::size_t ni = 0, no = 0, in = 0, out = 0;
  std::string op;
  gl >> ni >> no >> in >> out >> op;
  EXPECT_EQ(out, wires - 1);
  EXPECT_EQ(op, "EQW");
}

TEST(Bristol, RejectsSequentialCircuits) {
  const Circuit c = make_mac_circuit(MacOptions{8, 8, true});
  EXPECT_THROW((void)to_bristol(c), std::invalid_argument);
}

TEST(Bristol, RejectsMalformedInput) {
  EXPECT_THROW((void)from_bristol("garbage"), std::runtime_error);
  EXPECT_THROW((void)from_bristol("1 3\n1 2\n1 1\n2 1 0 5 2 XOR\n"),
               std::runtime_error);  // out-of-range wire
  EXPECT_THROW((void)from_bristol("1 4\n1 2\n1 1\n2 1 0 3 2 NANDX\n"),
               std::runtime_error);  // unknown op
  EXPECT_THROW((void)from_bristol("1 4\n1 2\n1 1\n2 1 0 3 2 XOR\n"),
               std::runtime_error);  // uses undefined wire 3
}

TEST(Bristol, ParsesHandWrittenCircuit) {
  // 1-bit full adder in Bristol Fashion: inputs a, b (party 1), c (party
  // 2); outputs carry, sum as the last two wires.
  const std::string text =
      "4 7\n"
      "2 2 1\n"
      "1 2\n"
      "2 1 0 1 3 XOR\n"   // t = a ^ b
      "2 1 3 2 6 XOR\n"   // sum = t ^ c  (wire 6 = last)
      "2 1 0 1 4 AND\n"   // g = a & b
      "2 1 3 2 5 AND\n"   // p = t & c   (wire 5)
      ;
  // outputs = wires 5, 6 => {p, sum}; p^g would be carry but this tiny
  // example just checks parsing + evaluation order.
  const Circuit c = from_bristol(text);
  EXPECT_EQ(c.garbler_inputs.size(), 2u);
  EXPECT_EQ(c.evaluator_inputs.size(), 1u);
  // a=1, b=0 (garbler), c=1 (evaluator).
  const auto out = eval_plain(c, {true, false}, {true});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0]);   // p = (a^b) & c = 1
  EXPECT_FALSE(out[1]);  // sum = a ^ b ^ c = 0
}

}  // namespace
}  // namespace maxel::circuit
