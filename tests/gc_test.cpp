// Garbling-scheme and whole-circuit GC tests: every scheme is checked
// against plaintext semantics for every gate type, every builder circuit,
// and the sequential multi-round MAC; Free-XOR and point-and-permute
// invariants are asserted directly at the label level.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/arith_ext.hpp"
#include "circuit/circuits.hpp"
#include "circuit/ml_blocks.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "gc/scheme.hpp"
#include "sweep_env.hpp"

namespace maxel::gc {
namespace {

using circuit::Builder;
using circuit::Bus;
using circuit::Circuit;
using circuit::GateType;
using circuit::MacOptions;
using circuit::RoundInputs;
using circuit::to_bits;
using circuit::Wire;
using crypto::Block;
using crypto::SystemRandom;

const Scheme kAllSchemes[] = {Scheme::kClassic4, Scheme::kGrr3,
                              Scheme::kHalfGates};

TEST(SchemeBasics, RowCountsMatchPaper) {
  EXPECT_EQ(rows_per_and(Scheme::kClassic4), 4u);
  EXPECT_EQ(rows_per_and(Scheme::kGrr3), 3u);   // row reduction: -25%
  EXPECT_EQ(rows_per_and(Scheme::kHalfGates), 2u);  // half gates: -50%
  EXPECT_EQ(bytes_per_and(Scheme::kHalfGates), 32u);
}

class GateLevel : public ::testing::TestWithParam<Scheme> {};

TEST_P(GateLevel, EveryNonXorGateEveryInput) {
  SystemRandom rng(Block{123, 0});
  const Block delta = crypto::random_delta(rng);
  const GateGarbler garbler(GetParam(), delta);
  const GateGarbler evaluator(GetParam(), Block::zero());

  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor}) {
    const Block a0 = rng.next_block();
    const Block b0 = rng.next_block();
    const Block tweak{2 * 7, 3};
    GarbledTable table;
    const Block c0 = garbler.garble(circuit::and_form(t), a0, b0, tweak, table);

    for (int va = 0; va < 2; ++va) {
      for (int vb = 0; vb < 2; ++vb) {
        const Block a = va != 0 ? a0 ^ delta : a0;
        const Block b = vb != 0 ? b0 ^ delta : b0;
        const Block c = evaluator.evaluate(a, b, table, tweak);
        const bool expect = circuit::eval_gate(t, va != 0, vb != 0);
        EXPECT_EQ(c, expect ? c0 ^ delta : c0)
            << scheme_name(GetParam()) << " gate " << static_cast<int>(t)
            << " inputs " << va << vb;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, GateLevel,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           return std::string(scheme_name(info.param));
                         });

TEST(GateLevel, DistinctTweaksGiveDistinctTables) {
  SystemRandom rng(Block{5, 5});
  const GateGarbler g(Scheme::kHalfGates, crypto::random_delta(rng));
  const Block a0 = rng.next_block();
  const Block b0 = rng.next_block();
  GarbledTable t1, t2;
  (void)g.garble(circuit::and_form(GateType::kAnd), a0, b0, Block{0, 0}, t1);
  (void)g.garble(circuit::and_form(GateType::kAnd), a0, b0, Block{2, 0}, t2);
  EXPECT_NE(t1, t2);
}

TEST(GateLevel, GarblingIsDeterministicGivenLabels) {
  SystemRandom rng(Block{6, 6});
  const Block delta = crypto::random_delta(rng);
  const Block a0 = rng.next_block();
  const Block b0 = rng.next_block();
  for (Scheme s : kAllSchemes) {
    const GateGarbler g(s, delta);
    GarbledTable t1, t2;
    const Block c1 =
        g.garble(circuit::and_form(GateType::kAnd), a0, b0, Block{4, 9}, t1);
    const Block c2 =
        g.garble(circuit::and_form(GateType::kAnd), a0, b0, Block{4, 9}, t2);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(t1, t2);
  }
}

// Whole-circuit garble -> evaluate -> decode == plaintext, for a set of
// representative circuits, under every scheme.
struct CircuitCase {
  const char* name;
  Circuit (*make)();
};

Circuit make_xor_chain() {
  Builder b;
  const Bus a = b.garbler_inputs(8);
  const Bus x = b.evaluator_inputs(8);
  b.set_outputs(b.xor_bus(a, x));
  return b.take();
}

Circuit make_adder8() {
  Builder b;
  const Bus a = b.garbler_inputs(8);
  const Bus x = b.evaluator_inputs(8);
  b.set_outputs(b.add(a, x));
  return b.take();
}

Circuit make_mult8() {
  return make_multiplier_circuit(MacOptions{8, 8, true});
}

Circuit make_millionaires8() { return circuit::make_millionaires_circuit(8); }

Circuit make_mixed_gates() {
  Builder b;
  const Bus a = b.garbler_inputs(4);
  const Bus x = b.evaluator_inputs(4);
  Bus out;
  out.push_back(b.gate(GateType::kNand, a[0], x[0]));
  out.push_back(b.gate(GateType::kNor, a[1], x[1]));
  out.push_back(b.gate(GateType::kOr, a[2], x[2]));
  out.push_back(b.gate(GateType::kXnor, a[3], x[3]));
  out.push_back(b.not_(a[0]));
  out.push_back(b.mux(a[1], x[2], x[3]));
  b.set_outputs(out);
  return b.take();
}


Circuit make_divider6() { return circuit::make_divider_circuit(6); }
Circuit make_sqrt10() { return circuit::make_sqrt_circuit(10); }
Circuit make_argmax4() { return circuit::make_argmax_circuit(4, 6); }
Circuit make_relu3() { return circuit::make_relu_layer_circuit(3, 6); }

class WholeCircuit
    : public ::testing::TestWithParam<std::tuple<Scheme, CircuitCase>> {};

TEST_P(WholeCircuit, GarbleEvaluateDecodeMatchesPlaintext) {
  const auto [scheme, cc] = GetParam();
  const Circuit c = cc.make();
  crypto::Prg prg(Block{99, static_cast<std::uint64_t>(scheme)});
  SystemRandom rng(Block{42, 17});

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> g_bits(c.garbler_inputs.size());
    std::vector<bool> e_bits(c.evaluator_inputs.size());
    for (auto&& bit : g_bits) bit = prg.next_bit();
    for (auto&& bit : e_bits) bit = prg.next_bit();

    const auto expect = circuit::eval_plain(c, g_bits, e_bits);
    const auto got = garble_and_evaluate(c, scheme, g_bits, e_bits, rng);
    ASSERT_EQ(got, expect) << cc.name << " under " << scheme_name(scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesXCircuits, WholeCircuit,
    ::testing::Combine(
        ::testing::ValuesIn(kAllSchemes),
        ::testing::Values(CircuitCase{"xor_chain", make_xor_chain},
                          CircuitCase{"adder8", make_adder8},
                          CircuitCase{"mult8_signed", make_mult8},
                          CircuitCase{"millionaires8", make_millionaires8},
                          CircuitCase{"mixed_gates", make_mixed_gates},
                          CircuitCase{"divider6", make_divider6},
                          CircuitCase{"sqrt10", make_sqrt10},
                          CircuitCase{"argmax4", make_argmax4},
                          CircuitCase{"relu3", make_relu3})),
    [](const auto& info) {
      return std::string(scheme_name(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param).name;
    });

TEST(TableStream, CountAndSizeMatchAndCount) {
  const Circuit c = make_mult8();
  SystemRandom rng(Block{1, 2});
  for (Scheme s : kAllSchemes) {
    CircuitGarbler g(c, s, rng);
    const RoundTables t = g.garble_round();
    EXPECT_EQ(t.tables.size(), c.and_count());
    EXPECT_EQ(t.byte_size(s), c.and_count() * bytes_per_and(s));
  }
}

TEST(FreeXor, XorGatesProduceNoTables) {
  const Circuit c = make_xor_chain();
  EXPECT_EQ(c.and_count(), 0u);
  SystemRandom rng(Block{3, 4});
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  EXPECT_TRUE(g.garble_round().tables.empty());
}

TEST(FreeXor, LabelInvariantHolds) {
  // For every wire, label1 == label0 ^ delta; for XOR gate outputs,
  // label0 == a0 ^ b0.
  Builder b;
  const Wire p = b.garbler_input();
  const Wire q = b.evaluator_input();
  const Wire r = b.xor_(p, q);
  const Wire s = b.gate(GateType::kXnor, p, q);
  b.set_outputs({r, s});
  const Circuit c = b.take();

  SystemRandom rng(Block{8, 8});
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  (void)g.garble_round();
  const auto& l0 = g.wire_labels0();
  EXPECT_EQ(l0[r], l0[p] ^ l0[q]);
  EXPECT_EQ(l0[s], l0[p] ^ l0[q] ^ g.delta());
}

TEST(PointAndPermute, DeltaLsbIsOne) {
  SystemRandom rng(Block{13, 13});
  const Circuit c = make_adder8();
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  EXPECT_TRUE(g.delta().lsb());
}

TEST(OutputDecode, MapAndDirectDecodeAgree) {
  const Circuit c = make_adder8();
  SystemRandom rng(Block{21, 0});
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  const RoundTables tables = g.garble_round();

  CircuitEvaluator ev(c, Scheme::kHalfGates);
  std::vector<Block> g_labels, e_labels;
  for (std::size_t i = 0; i < 8; ++i) {
    g_labels.push_back(g.garbler_input_label(i, (i % 2) != 0));
    const auto [l0, l1] = g.evaluator_input_labels(i);
    e_labels.push_back((i % 3) == 0 ? l1 : l0);
  }
  ev.set_initial_state_labels({});
  const auto out = ev.eval_round(tables, g_labels, e_labels,
                                 g.fixed_wire_labels());
  const auto decoded = decode_with_map(out, g.output_map());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(g.decode_output(i, out[i]), decoded[i]);
}

TEST(OutputDecode, ForeignLabelThrows) {
  const Circuit c = make_adder8();
  SystemRandom rng(Block{22, 0});
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  (void)g.garble_round();
  EXPECT_THROW((void)g.decode_output(0, Block{1, 1}), std::runtime_error);
}

class SequentialGc : public ::testing::TestWithParam<Scheme> {};

TEST_P(SequentialGc, MultiRoundMacMatchesReference) {
  const Scheme scheme = GetParam();
  const MacOptions opt{8, 8, true, Builder::MulStructure::kTree};
  const Circuit c = circuit::make_mac_circuit(opt);

  SystemRandom rng(Block{31, static_cast<std::uint64_t>(scheme)});
  CircuitGarbler garbler(c, scheme, rng);
  CircuitEvaluator evaluator(c, scheme);

  crypto::Prg prg(Block{64, 64});
  std::uint64_t expect = 0;
  std::vector<Block> out_labels;
  const int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    expect = circuit::mac_reference(expect, a, x, opt);

    const RoundTables tables = garbler.garble_round();
    // Initial-state labels exist only once round 0 has been garbled.
    if (round == 0)
      evaluator.set_initial_state_labels(garbler.initial_state_labels());
    std::vector<Block> g_labels(8), e_labels(8);
    for (std::size_t i = 0; i < 8; ++i) {
      g_labels[i] = garbler.garbler_input_label(i, ((a >> i) & 1u) != 0);
      const auto [l0, l1] = garbler.evaluator_input_labels(i);
      e_labels[i] = ((x >> i) & 1u) != 0 ? l1 : l0;
    }
    out_labels = evaluator.eval_round(tables, g_labels, e_labels,
                                      garbler.fixed_wire_labels());
  }
  const auto decoded = decode_with_map(out_labels, garbler.output_map());
  EXPECT_EQ(circuit::from_bits(decoded), expect);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SequentialGc,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           return std::string(scheme_name(info.param));
                         });

TEST(SequentialGc, InitialStateLabelsEncodeInitValues) {
  Builder b;
  const Wire d0 = b.make_dff(false);
  const Wire d1 = b.make_dff(true);
  const Wire g_in = b.garbler_input();
  b.connect_dff(d0, b.xor_(d0, g_in));
  b.connect_dff(d1, b.xor_(d1, g_in));
  b.set_outputs({d0, d1});
  const Circuit c = b.take();

  SystemRandom rng(Block{71, 0});
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  (void)g.garble_round();
  const auto init = g.initial_state_labels();
  const auto& l0 = g.wire_labels0();
  EXPECT_EQ(init[0], l0[c.dffs[0].q]);               // init 0 -> 0-label
  EXPECT_EQ(init[1], l0[c.dffs[1].q] ^ g.delta());   // init 1 -> 1-label
}

TEST(SequentialGc, FreshInputLabelsEveryRound) {
  const MacOptions opt{4, 4, false};
  const Circuit c = circuit::make_mac_circuit(opt);
  SystemRandom rng(Block{81, 0});
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  (void)g.garble_round();
  const Block first = g.garbler_input_label(0, false);
  (void)g.garble_round();
  EXPECT_NE(g.garbler_input_label(0, false), first);
}

TEST(SequentialGc, TablesDifferAcrossRounds) {
  const MacOptions opt{4, 4, false};
  const Circuit c = circuit::make_mac_circuit(opt);
  SystemRandom rng(Block{82, 0});
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  const auto r0 = g.garble_round();
  const auto r1 = g.garble_round();
  ASSERT_EQ(r0.tables.size(), r1.tables.size());
  EXPECT_NE(r0.tables.front(), r1.tables.front());
}

// ---------------------------------------------------------------------------
// Property sweeps: randomized shapes against plaintext semantics. The
// shape stream is pinned (kSweepSeed) and every trial logs its derived
// parameters via SCOPED_TRACE, so a failure reproduces exactly.

TEST(SequentialGc, RandomizedMacShapesMatchReference) {
  const std::uint64_t kSweepSeed = test::sweep_seed(0xC0FFEE01);
  crypto::Prg shape(Block{kSweepSeed, 1});
  const int n_trials = test::sweep_trials(12);
  for (int trial = 0; trial < n_trials; ++trial) {
    const std::size_t bits = 2 + shape.next_u64() % 19;    // 2..20
    const std::size_t rounds = 1 + shape.next_u64() % 12;  // vector length
    const bool sign = shape.next_bit();
    const Scheme scheme =
        kAllSchemes[shape.next_u64() % std::size(kAllSchemes)];
    SCOPED_TRACE("sweep_seed=" + std::to_string(kSweepSeed) +
                 " trial=" + std::to_string(trial) +
                 " bits=" + std::to_string(bits) +
                 " rounds=" + std::to_string(rounds) +
                 " signed=" + std::to_string(sign) + " scheme=" +
                 scheme_name(scheme));

    const MacOptions opt{bits, bits, sign};
    const Circuit c = circuit::make_mac_circuit(opt);
    SystemRandom rng(Block{kSweepSeed, static_cast<std::uint64_t>(trial)});
    CircuitGarbler garbler(c, scheme, rng);
    CircuitEvaluator evaluator(c, scheme);

    const std::uint64_t mask = (1ull << bits) - 1;
    std::uint64_t expect = 0;
    std::vector<Block> out_labels;
    for (std::size_t round = 0; round < rounds; ++round) {
      const std::uint64_t a = shape.next_u64() & mask;
      const std::uint64_t x = shape.next_u64() & mask;
      expect = circuit::mac_reference(expect, a, x, opt);

      const RoundTables tables = garbler.garble_round();
      if (round == 0)
        evaluator.set_initial_state_labels(garbler.initial_state_labels());
      std::vector<Block> g_labels(bits), e_labels(bits);
      for (std::size_t i = 0; i < bits; ++i) {
        g_labels[i] = garbler.garbler_input_label(i, ((a >> i) & 1u) != 0);
        const auto [l0, l1] = garbler.evaluator_input_labels(i);
        e_labels[i] = ((x >> i) & 1u) != 0 ? l1 : l0;
      }
      out_labels = evaluator.eval_round(tables, g_labels, e_labels,
                                        garbler.fixed_wire_labels());
    }
    const auto decoded = decode_with_map(out_labels, garbler.output_map());
    ASSERT_EQ(circuit::from_bits(decoded), expect);
  }
}

TEST(WholeCircuit, RandomizedMultiplierWidthsMatchPlaintext) {
  const std::uint64_t kSweepSeed = test::sweep_seed(0xC0FFEE02);
  crypto::Prg shape(Block{kSweepSeed, 2});
  SystemRandom rng(Block{kSweepSeed, 3});
  const int n_trials = test::sweep_trials(8);
  for (int trial = 0; trial < n_trials; ++trial) {
    const std::size_t bits = 2 + shape.next_u64() % 15;  // 2..16
    const bool sign = shape.next_bit();
    const Scheme scheme =
        kAllSchemes[shape.next_u64() % std::size(kAllSchemes)];
    SCOPED_TRACE("sweep_seed=" + std::to_string(kSweepSeed) +
                 " trial=" + std::to_string(trial) +
                 " bits=" + std::to_string(bits) +
                 " signed=" + std::to_string(sign) + " scheme=" +
                 scheme_name(scheme));

    const Circuit c = make_multiplier_circuit(MacOptions{bits, bits, sign});
    std::vector<bool> g_bits(c.garbler_inputs.size());
    std::vector<bool> e_bits(c.evaluator_inputs.size());
    for (auto&& bit : g_bits) bit = shape.next_bit();
    for (auto&& bit : e_bits) bit = shape.next_bit();
    ASSERT_EQ(garble_and_evaluate(c, scheme, g_bits, e_bits, rng),
              circuit::eval_plain(c, g_bits, e_bits));
  }
}

TEST(Evaluator, TableUnderrunDetected) {
  const Circuit c = make_mult8();
  SystemRandom rng(Block{91, 0});
  CircuitGarbler g(c, Scheme::kHalfGates, rng);
  RoundTables tables = g.garble_round();
  tables.tables.pop_back();

  CircuitEvaluator ev(c, Scheme::kHalfGates);
  std::vector<Block> g_labels, e_labels;
  for (std::size_t i = 0; i < 8; ++i) {
    g_labels.push_back(g.garbler_input_label(i, false));
    e_labels.push_back(g.evaluator_input_labels(i).first);
  }
  EXPECT_THROW((void)ev.eval_round(tables, g_labels, e_labels,
                                   g.fixed_wire_labels()),
               std::runtime_error);
}

}  // namespace
}  // namespace maxel::gc
