// Protocol-v3 garbling (gc/v3.hpp): known-operand gate classification,
// the 1-row generator/evaluator half gates, PRG-seeded active labels,
// and the late-bound-input correction path. Correctness is checked
// against the plaintext reference over many rounds and circuit shapes;
// the ciphertext rows get the same randomness battery as the v2 tables
// (a structured row is a leak, however few of them v3 ships).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "circuit/builder.hpp"
#include "circuit/circuits.hpp"
#include "crypto/gc_hash.hpp"
#include "crypto/prg.hpp"
#include "crypto/randomness_tests.hpp"
#include "crypto/rng.hpp"
#include "gc/v3.hpp"

namespace maxel::gc {
namespace {

using circuit::MacOptions;
using crypto::Block;
using crypto::SystemRandom;

Block make_delta(SystemRandom& rng) {
  Block d = rng.next_block();
  d.lo |= 1;
  return d;
}

// Runs `rounds` garble/eval rounds of a sequential circuit and checks
// the decoded outputs against eval_sequential_plain on the same inputs.
void check_circuit(const circuit::Circuit& c, std::size_t rounds,
                   std::uint64_t seed) {
  SystemRandom rng(Block{seed, 0x5133});
  const V3Analysis an = analyze_v3(c);
  const Block delta = make_delta(rng);
  const Block label_seed = rng.next_block();
  V3Garbler garbler(c, an, delta, label_seed, rng);
  V3Evaluator evaluator(c, an, label_seed);

  crypto::Prg data(Block{seed, 0xDA7A});
  std::vector<bool> state;
  for (const auto& d : c.dffs) state.push_back(d.init);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<bool> g_bits, e_bits;
    for (std::size_t i = 0; i < c.garbler_inputs.size(); ++i)
      g_bits.push_back(data.next_bit());
    for (std::size_t i = 0; i < c.evaluator_inputs.size(); ++i)
      e_bits.push_back(data.next_bit());
    const auto expect = circuit::eval_plain(c, g_bits, e_bits, &state);

    const V3RoundMaterial m = garbler.garble_round(g_bits);
    EXPECT_EQ(m.rows.size(), an.rows_per_round);
    EXPECT_TRUE(m.late_labels0.empty());
    std::vector<Block> e_labels;
    for (std::size_t i = 0; i < c.evaluator_inputs.size(); ++i)
      e_labels.push_back(e_bits[i] ? m.evaluator_pairs[i].second
                                   : m.evaluator_pairs[i].first);
    const auto out = evaluator.eval_round(m.rows, e_bits, e_labels);
    const auto decoded = decode_with_map(out, m.output_map);
    ASSERT_EQ(decoded.size(), expect.size()) << "round " << r;
    for (std::size_t i = 0; i < decoded.size(); ++i)
      EXPECT_EQ(decoded[i], expect[i]) << "round " << r << " output " << i;
    // Garbler-side decode agrees.
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(garbler.decode_output(i, out[i]), expect[i]);
  }
}

TEST(V3Analysis, ClassCountsMatchTheMacCircuit) {
  // Locked-in classification of the b=8 signed MAC: these counts are
  // what the byte budget of docs/PROTOCOL.md is computed from.
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const V3Analysis an = analyze_v3(c);
  EXPECT_EQ(an.n_full + an.n_gen_half + an.n_eval_half + an.n_known_out,
            c.and_count());
  EXPECT_EQ(an.n_full, 35u);
  EXPECT_EQ(an.n_gen_half, 64u);
  EXPECT_EQ(an.n_eval_half, 7u);
  EXPECT_EQ(an.n_known_out, 7u);
  EXPECT_EQ(an.rows_per_round, 2 * 35u + 64u + 7u);
  // v3 ships well under 2/3 of the v2 table bytes on this circuit.
  EXPECT_LT(3 * an.rows_per_round, 2 * 2 * c.and_count());
}

TEST(V3Analysis, RowsShrinkAtEveryWidth) {
  for (const std::size_t bits : {std::size_t{8}, std::size_t{16},
                                 std::size_t{32}}) {
    const circuit::Circuit c =
        circuit::make_mac_circuit(MacOptions{bits, bits, true});
    const V3Analysis an = analyze_v3(c);
    EXPECT_LT(an.rows_per_round, 2 * c.and_count()) << "b=" << bits;
    EXPECT_GT(an.n_known_out, 0u) << "b=" << bits;
  }
}

TEST(V3RoundTrip, MacManyRounds) {
  check_circuit(circuit::make_mac_circuit(MacOptions{8, 8, true}), 50, 1);
  check_circuit(circuit::make_mac_circuit(MacOptions{16, 16, true}), 12, 2);
  check_circuit(circuit::make_mac_circuit(MacOptions{8, 8, false}), 20, 3);
}

TEST(V3RoundTrip, OtherCircuitShapes) {
  check_circuit(circuit::make_millionaires_circuit(8), 6, 4);
  check_circuit(circuit::make_multiplier_circuit(MacOptions{6, 6, true}), 6,
                5);
  check_circuit(
      circuit::make_dot_product_circuit(2, MacOptions{8, 8, true}), 10, 6);
}

TEST(V3RoundTrip, MacAccumulationMatchesReference) {
  const MacOptions opt{16, 16, true};
  const circuit::Circuit c = circuit::make_mac_circuit(opt);
  SystemRandom rng(Block{0x77, 0x88});
  const V3Analysis an = analyze_v3(c);
  const Block delta = make_delta(rng);
  const Block seed = rng.next_block();
  V3Garbler g(c, an, delta, seed, rng);
  V3Evaluator e(c, an, seed);

  crypto::Prg data(Block{0x99, 0xAA});
  std::uint64_t acc = 0;
  for (std::size_t r = 0; r < 32; ++r) {
    const std::uint64_t av = data.next_u64() & 0xFFFF;
    const std::uint64_t xv = data.next_u64() & 0xFFFF;
    acc = circuit::mac_reference(acc, av, xv, opt);
    const auto a_bits = circuit::to_bits(av, 16);
    const auto x_bits = circuit::to_bits(xv, 16);
    const V3RoundMaterial m = g.garble_round(a_bits);
    std::vector<Block> e_labels;
    for (std::size_t i = 0; i < 16; ++i)
      e_labels.push_back(x_bits[i] ? m.evaluator_pairs[i].second
                                   : m.evaluator_pairs[i].first);
    const auto out = e.eval_round(m.rows, x_bits, e_labels);
    EXPECT_EQ(circuit::from_bits(decode_with_map(out, m.output_map)), acc)
        << "round " << r;
  }
}

TEST(V3LateBinding, CorrectionsCarryLateInputs) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  SystemRandom rng(Block{0xBB, 0xCC});
  // Half the garbler inputs late-bound: their cones fall back to kFull /
  // kEvalHalf and their active labels travel as explicit corrections.
  std::vector<bool> late(c.garbler_inputs.size(), false);
  for (std::size_t i = 0; i < late.size(); i += 2) late[i] = true;
  const V3Analysis an = analyze_v3(c, late);
  const V3Analysis an_all = analyze_v3(c);
  EXPECT_GT(an.rows_per_round, an_all.rows_per_round);

  const Block delta = make_delta(rng);
  const Block seed = rng.next_block();
  V3Garbler g(c, an, delta, seed, rng);
  V3Evaluator e(c, an, seed);

  crypto::Prg data(Block{0xDD, 0xEE});
  std::uint64_t acc = 0;
  const MacOptions opt{8, 8, true};
  for (std::size_t r = 0; r < 10; ++r) {
    const std::uint64_t av = data.next_u64() & 0xFF;
    const std::uint64_t xv = data.next_u64() & 0xFF;
    acc = circuit::mac_reference(acc, av, xv, opt);
    const auto a_bits = circuit::to_bits(av, 8);
    const auto x_bits = circuit::to_bits(xv, 8);
    const V3RoundMaterial m = g.garble_round(a_bits);
    EXPECT_EQ(m.late_labels0.size(), (late.size() + 1) / 2);
    std::vector<std::pair<std::uint32_t, Block>> corrections;
    for (std::size_t i = 0; i < late.size(); ++i)
      if (late[i])
        corrections.emplace_back(c.garbler_inputs[i],
                                 g.late_input_label(i, a_bits[i]));
    std::vector<Block> e_labels;
    for (std::size_t i = 0; i < 8; ++i)
      e_labels.push_back(x_bits[i] ? m.evaluator_pairs[i].second
                                   : m.evaluator_pairs[i].first);
    const auto out = e.eval_round(m.rows, x_bits, e_labels, corrections);
    EXPECT_EQ(circuit::from_bits(decode_with_map(out, m.output_map)), acc)
        << "round " << r;
  }
}

TEST(V3LateBinding, MissingCorrectionIsTyped) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  SystemRandom rng(Block{0x11, 0x22});
  std::vector<bool> late(c.garbler_inputs.size(), true);
  const V3Analysis an = analyze_v3(c, late);
  V3Garbler g(c, an, make_delta(rng), rng.next_block(), rng);
  V3Evaluator e(c, an, g.label_seed());
  const V3RoundMaterial m = g.garble_round(std::vector<bool>(4, false));
  std::vector<Block> e_labels;
  for (const auto& [l0, l1] : m.evaluator_pairs) {
    (void)l1;
    e_labels.push_back(l0);
  }
  EXPECT_THROW(
      (void)e.eval_round(m.rows, std::vector<bool>(4, false), e_labels, {}),
      std::runtime_error);
}

TEST(V3Desync, TruncatedOrPaddedRowStreamIsTyped) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(8);
  SystemRandom rng(Block{0x33, 0x44});
  const V3Analysis an = analyze_v3(c);
  V3Garbler g(c, an, make_delta(rng), rng.next_block(), rng);
  V3Evaluator e(c, an, g.label_seed());
  V3RoundMaterial m = g.garble_round(std::vector<bool>(8, true));
  std::vector<Block> e_labels;
  for (const auto& [l0, l1] : m.evaluator_pairs) {
    (void)l1;
    e_labels.push_back(l0);
  }
  auto truncated = m.rows;
  truncated.pop_back();
  EXPECT_THROW((void)e.eval_round(truncated, std::vector<bool>(8, false),
                                  e_labels),
               std::runtime_error);
  auto padded = m.rows;
  padded.push_back(Block{1, 2});
  EXPECT_THROW(
      (void)e.eval_round(padded, std::vector<bool>(8, false), e_labels),
      std::runtime_error);
}

TEST(V3Security, RowsAndSeededLabelsLookUniform) {
  const circuit::Circuit c =
      circuit::make_mac_circuit(MacOptions{16, 16, true});
  SystemRandom rng(Block{0x55, 0x66});
  const V3Analysis an = analyze_v3(c);
  V3Garbler g(c, an, make_delta(rng), rng.next_block(), rng);
  crypto::Prg data(Block{0x77, 0x11});
  std::vector<bool> bits;
  std::set<std::string> seen;
  for (int r = 0; r < 12; ++r) {
    std::vector<bool> a_bits;
    for (int i = 0; i < 16; ++i) a_bits.push_back((data.next_u64() & 1) != 0);
    const V3RoundMaterial m = g.garble_round(a_bits);
    for (const Block& row : m.rows) {
      EXPECT_TRUE(seen.insert(row.hex()).second) << "repeated row";
      std::uint8_t raw[16];
      row.to_bytes(raw);
      for (int byte = 0; byte < 16; ++byte)
        for (int bit = 0; bit < 8; ++bit)
          bits.push_back(((raw[byte] >> bit) & 1) != 0);
    }
  }
  ASSERT_GT(bits.size(), 10000u);
  const auto report = crypto::run_battery(bits);
  EXPECT_TRUE(report.passes(0.001))
      << "monobit=" << report.monobit_p << " runs=" << report.runs_p
      << " poker=" << report.poker_p;
  EXPECT_GT(report.entropy_per_bit, 0.995);

  // Seed-derived active labels (what an eavesdropper sees instead of the
  // old label transfer) are H outputs: the battery must pass there too.
  std::vector<bool> label_bits;
  const crypto::GcHash h;
  const Block seed = g.label_seed();
  for (std::uint64_t r = 0; r < 40; ++r)
    for (circuit::Wire w = 0; w < 64; ++w) {
      std::uint8_t raw[16];
      h(seed, v3_label_tweak(w, r)).to_bytes(raw);
      for (int byte = 0; byte < 16; ++byte)
        for (int bit = 0; bit < 8; ++bit)
          label_bits.push_back(((raw[byte] >> bit) & 1) != 0);
    }
  EXPECT_TRUE(crypto::run_battery(label_bits).passes(0.001));
}

TEST(V3Garbler, RejectsEvenDelta) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  SystemRandom rng(Block{0x12, 0x34});
  const V3Analysis an = analyze_v3(c);
  EXPECT_THROW(V3Garbler(c, an, Block{2, 0}, Block{1, 1}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace maxel::gc
