// Reusable-mode end-to-end: one garbling serves many TCP sessions with
// bit-identical outputs across the reusable, precomputed, and plaintext
// reference paths; the handshake rejects the mode with typed verdicts
// wherever it cannot be served; broker tests below drive the spool lane
// and artifact-survival-across-restart contract.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuit/circuits.hpp"
#include "crypto/rng.hpp"
#include "net/client.hpp"
#include "net/demo_inputs.hpp"
#include "net/error.hpp"
#include "net/handshake.hpp"
#include "net/reusable_service.hpp"
#include "net/server.hpp"
#include "net/tcp_channel.hpp"
#include "net/v3_service.hpp"
#include "svc/broker.hpp"
#include "svc/session_spool.hpp"

namespace maxel::net {
namespace {

using crypto::Block;

TcpOptions fast_opts() {
  TcpOptions o;
  o.recv_timeout_ms = 5'000;
  o.connect_attempts = 3;
  o.connect_backoff_ms = 10;
  return o;
}

ServerConfig quiet_server_config(std::size_t bits, std::size_t rounds) {
  ServerConfig cfg;
  cfg.bind_addr = "127.0.0.1";
  cfg.port = 0;
  cfg.bits = bits;
  cfg.rounds_per_session = rounds;
  cfg.bank_low_watermark = 1;
  cfg.bank_batch = 1;
  cfg.precompute_cores = 2;
  cfg.max_sessions = 1;
  cfg.verbose = false;
  return cfg;
}

ClientConfig quiet_client_config(std::uint16_t port, std::size_t bits) {
  ClientConfig cfg;
  cfg.port = port;
  cfg.bits = bits;
  cfg.verbose = false;
  return cfg;
}

// The acceptance triangle: N reusable evaluations, the precomputed
// path, and the plaintext MAC reference must agree bit for bit — and
// the server must garble exactly once for all reusable sessions.
TEST(ReusableNet, SessionsMatchPrecomputedAndReferenceBitForBit) {
  const std::size_t bits = 16, rounds = 16;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  scfg.max_sessions = 4;
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  ClientConfig pre = quiet_client_config(server.port(), bits);
  const ClientStats sp = run_client(pre);

  // Three reusable sessions off one shared client state: the artifact
  // ships on the first and is cache-confirmed (by hash) on the rest.
  crypto::SystemRandom id_rng(Block{0xCAFE, 1});
  auto state = make_v3_client_state(id_rng);
  ClientConfig reu = quiet_client_config(server.port(), bits);
  reu.mode = SessionMode::kReusable;
  reu.v3_state = state;
  const ClientStats r1 = run_client(reu);
  const ClientStats r2 = run_client(reu);
  const ClientStats r3 = run_client(reu);
  serve.join();

  EXPECT_TRUE(sp.verified);
  EXPECT_TRUE(r1.verified);
  EXPECT_TRUE(r2.verified);
  EXPECT_TRUE(r3.verified);
  EXPECT_EQ(r1.output_value, sp.output_value);
  EXPECT_EQ(r1.output_value, demo_mac_reference(reu.demo_seed, bits, rounds));
  EXPECT_EQ(r2.output_value, r1.output_value);
  EXPECT_EQ(r3.output_value, r1.output_value);
  EXPECT_EQ(r1.protocol_used, kProtocolVersionV3);

  // One base OT for all three sessions, and the artifact cached after
  // the first: setup shrinks by an order of magnitude on resumption.
  EXPECT_FALSE(r1.pool_resumed);
  EXPECT_TRUE(r2.pool_resumed);
  EXPECT_TRUE(r3.pool_resumed);
  EXPECT_LE(r2.setup_bytes * 10, r1.setup_bytes);
  EXPECT_TRUE(state->reusable_view.has_value());

  const ServerStats ss = server.stats();
  EXPECT_EQ(ss.sessions_served, 4u);
  EXPECT_EQ(ss.reusable_sessions_served, 3u);
  EXPECT_EQ(ss.reusable_artifacts_sent, 1u);
  EXPECT_EQ(ss.reusable_garbles, 1u);  // garbled once, at construction
  EXPECT_EQ(ss.v3_fresh_pools, 1u);
  EXPECT_EQ(server.v3_outstanding_claims(), 0u);
}

// Once the artifact and pool are warm, a reusable session moves far
// fewer bytes per MAC than the v3 slim wire for the same work: the
// whole session is d/z bit vectors plus masked garbler bits.
TEST(ReusableNet, WarmSessionsSlimTheWireUnderV3) {
  const std::size_t bits = 16, rounds = 32;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  scfg.max_sessions = 4;
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  crypto::SystemRandom id_rng(Block{0xBEEF, 2});
  ClientConfig v3 = quiet_client_config(server.port(), bits);
  v3.protocol = kProtocolVersionV3;
  v3.v3_state = make_v3_client_state(id_rng);
  (void)run_client(v3);                     // warm pool
  const ClientStats v3_warm = run_client(v3);

  ClientConfig reu = quiet_client_config(server.port(), bits);
  reu.mode = SessionMode::kReusable;
  reu.v3_state = make_v3_client_state(id_rng);
  (void)run_client(reu);                    // warm pool + artifact
  const ClientStats reu_warm = run_client(reu);
  serve.join();

  EXPECT_TRUE(v3_warm.verified);
  EXPECT_TRUE(reu_warm.verified);
  const std::uint64_t v3_bytes = v3_warm.bytes_sent + v3_warm.bytes_received;
  const std::uint64_t reu_bytes =
      reu_warm.bytes_sent + reu_warm.bytes_received;
  // The CI gate demands <= 0.25x at 1000 sessions; a single warm session
  // is already far below that.
  EXPECT_LT(reu_bytes * 4, v3_bytes)
      << "reusable " << reu_bytes << " B vs v3 " << v3_bytes << " B";
}

// ---------------------------------------------------------------------------
// Handshake verdicts.

ServerExpectation reusable_expectation(std::size_t bits) {
  ServerExpectation ex;
  ex.scheme = gc::Scheme::kHalfGates;
  ex.bit_width = static_cast<std::uint32_t>(bits);
  ex.circuit_hash = circuit_fingerprint(
      circuit::make_mac_circuit(circuit::MacOptions{bits, bits, true}));
  ex.rounds_per_session = 16;
  ex.allow_v3 = true;
  ex.allow_reusable = true;
  return ex;
}

struct HandshakePair {
  std::unique_ptr<TcpChannel> client;
  std::unique_ptr<TcpChannel> server;
};

HandshakePair make_pair_over_loopback(TcpListener& lis) {
  HandshakePair p;
  std::thread t([&] { p.server = lis.accept(5'000, fast_opts()); });
  p.client = TcpChannel::connect("127.0.0.1", lis.port(), fast_opts());
  t.join();
  return p;
}

ClientHello reusable_hello(const ServerExpectation& ex) {
  ClientHello h;
  h.scheme = static_cast<std::uint8_t>(ex.scheme);
  h.ot = static_cast<std::uint8_t>(OtChoice::kIknp);
  h.mode = static_cast<std::uint8_t>(SessionMode::kReusable);
  h.bit_width = ex.bit_width;
  h.circuit_hash = ex.circuit_hash;
  return h;
}

// Runs a v3 hello (with extension) against an expectation and returns
// the code each side saw.
std::pair<RejectCode, RejectCode> run_v3_handshake(
    const ClientHello& hello, const ServerExpectation& ex) {
  TcpListener lis(0, "127.0.0.1");
  HandshakePair p = make_pair_over_loopback(lis);
  RejectCode server_code = RejectCode::kOk;
  std::thread server([&] {
    try {
      (void)server_handshake_v23(*p.server, ex);
    } catch (const HandshakeError& e) {
      server_code = e.code();
    }
  });
  HelloExtV3 ext;
  ext.client_id = Block{5, 6};
  RejectCode client_code = RejectCode::kOk;
  try {
    (void)client_handshake_v3(*p.client, hello, ext);
  } catch (const HandshakeError& e) {
    client_code = e.code();
  }
  server.join();
  return {client_code, server_code};
}

TEST(ReusableHandshake, AcceptedWhenAllowed) {
  const ServerExpectation ex = reusable_expectation(8);
  const auto [cc, sc] = run_v3_handshake(reusable_hello(ex), ex);
  EXPECT_EQ(cc, RejectCode::kOk);
  EXPECT_EQ(sc, RejectCode::kOk);
}

TEST(ReusableHandshake, TypedRejectWhenModeDisabled) {
  ServerExpectation ex = reusable_expectation(8);
  ex.allow_reusable = false;
  const auto [cc, sc] = run_v3_handshake(reusable_hello(ex), ex);
  EXPECT_EQ(cc, RejectCode::kBadMode);
  EXPECT_EQ(sc, RejectCode::kBadMode);
}

TEST(ReusableHandshake, V2HelloAskingReusableIsBadMode) {
  // A v2 hello cannot carry the identity/ticket extension the reusable
  // flow needs: typed kBadMode, never a silent downgrade.
  const ServerExpectation ex = reusable_expectation(8);
  TcpListener lis(0, "127.0.0.1");
  HandshakePair p = make_pair_over_loopback(lis);
  RejectCode server_code = RejectCode::kOk;
  std::thread server([&] {
    try {
      (void)server_handshake_v23(*p.server, ex);
    } catch (const HandshakeError& e) {
      server_code = e.code();
    }
  });
  ClientHello h = reusable_hello(ex);  // version stays kProtocolVersion (2)
  RejectCode client_code = RejectCode::kOk;
  try {
    (void)client_handshake(*p.client, h);
  } catch (const HandshakeError& e) {
    client_code = e.code();
  }
  server.join();
  EXPECT_EQ(client_code, RejectCode::kBadMode);
  EXPECT_EQ(server_code, RejectCode::kBadMode);
}

TEST(ReusableHandshake, UnknownModeByteStillRejected) {
  // client_handshake_v3 coerces unknown modes, so a hostile hello with
  // mode one past kReusable has to go out raw — the server must still
  // answer with a typed kBadMode.
  const ServerExpectation ex = reusable_expectation(8);
  TcpListener lis(0, "127.0.0.1");
  HandshakePair p = make_pair_over_loopback(lis);
  RejectCode server_code = RejectCode::kOk;
  std::thread server([&] {
    try {
      (void)server_handshake_v23(*p.server, ex);
    } catch (const HandshakeError& e) {
      server_code = e.code();
    }
  });
  ClientHello h = reusable_hello(ex);
  h.version = kProtocolVersionV3;
  h.mode = 3;  // one past kReusable
  send_hello(*p.client, h);
  HelloExtV3 ext;
  ext.client_id = Block{9, 9};
  send_hello_ext_v3(*p.client, ext);
  const ServerAccept a = recv_accept(*p.client);
  server.join();
  EXPECT_EQ(a.status, RejectCode::kBadMode);
  EXPECT_EQ(server_code, RejectCode::kBadMode);
}

// ---------------------------------------------------------------------------
// Session-layer hostility: a served artifact whose bytes were flipped
// in flight must die to the checksum, not to undefined evaluation.

TEST(ReusableNet, DisabledModeServerRejectsRunClient) {
  const std::size_t bits = 8, rounds = 8;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  scfg.allow_reusable = false;
  scfg.max_sessions = 1;
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  ClientConfig reu = quiet_client_config(server.port(), bits);
  reu.mode = SessionMode::kReusable;
  RejectCode code = RejectCode::kOk;
  try {
    (void)run_client(reu);
  } catch (const HandshakeError& e) {
    code = e.code();
  }
  EXPECT_EQ(code, RejectCode::kBadMode);
  server.request_stop();
  serve.join();
}

// ---------------------------------------------------------------------------
// Broker + spool lane: garble once per (fingerprint, bits) key, persist
// the artifact, serve unbounded evaluations off it, survive restarts.

namespace fs = std::filesystem;

class ReusableBrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spool_dir_ = fs::temp_directory_path() /
                 ("maxel_reusable_broker_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()) +
                  "_" + ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
    fs::remove_all(spool_dir_);
  }
  void TearDown() override { fs::remove_all(spool_dir_); }

  svc::BrokerConfig broker_config(std::size_t bits, std::size_t rounds,
                                  std::uint64_t max_sessions) {
    svc::BrokerConfig cfg;
    cfg.bind_addr = "127.0.0.1";
    cfg.port = 0;
    cfg.bits = bits;
    cfg.rounds_per_session = rounds;
    cfg.workers = 2;
    cfg.spool_dir = spool_dir_.string();
    cfg.spool_low_watermark = 1;
    cfg.spool_high_watermark = 1;
    cfg.max_sessions = max_sessions;
    cfg.accept_poll_ms = 50;
    cfg.verbose = false;
    cfg.tcp.recv_timeout_ms = 10'000;
    return cfg;
  }

  ClientConfig broker_client(std::uint16_t port, std::size_t bits,
                             std::shared_ptr<V3ClientState> state) {
    ClientConfig cfg;
    cfg.port = port;
    cfg.bits = bits;
    cfg.mode = SessionMode::kReusable;
    cfg.v3_state = std::move(state);
    cfg.verbose = false;
    cfg.tcp.recv_timeout_ms = 10'000;
    cfg.tcp.connect_attempts = 5;
    cfg.tcp.connect_backoff_ms = 20;
    return cfg;
  }

  // The one reus-*.mxr artifact file in ready/, or an empty path.
  fs::path artifact_file() const {
    for (const auto& e : fs::directory_iterator(spool_dir_ / "ready"))
      if (e.path().filename().string().rfind("reus-", 0) == 0)
        return e.path();
    return {};
  }

  fs::path spool_dir_;
};

// The subsystem's acceptance bar: >=1000 MAC evaluations over TCP
// through the broker, all off ONE garbling, every decoded value
// bit-identical to the plaintext reference, zero stuck pool claims.
TEST_F(ReusableBrokerTest, ThousandEvaluationsOffOneGarbling) {
  const std::size_t bits = 16, rounds = 128, sessions = 8;
  svc::BrokerConfig bcfg = broker_config(bits, rounds, sessions);
  svc::Broker broker(bcfg);
  std::thread run([&] { broker.run(); });

  crypto::SystemRandom id_rng(Block{0x1000, 1});
  auto state = make_v3_client_state(id_rng);
  const ClientConfig cfg = broker_client(broker.port(), bits, state);
  const std::uint64_t expect = demo_mac_reference(cfg.demo_seed, bits, rounds);
  for (std::size_t s = 0; s < sessions; ++s) {
    const ClientStats st = run_client(cfg);
    ASSERT_TRUE(st.verified) << "session " << s;
    ASSERT_EQ(st.output_value, expect) << "session " << s;
  }
  run.join();

  const svc::BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.reusable_sessions_served, sessions);
  EXPECT_EQ(st.server.reusable_garbles, 1u);
  EXPECT_EQ(st.server.reusable_artifacts_sent, 1u);
  EXPECT_EQ(st.spool.reusable_ready, 1u);
  EXPECT_GE(st.spool.reusable_evaluations, 1000u);
  EXPECT_EQ(st.spool.reusable_evaluations, sessions * rounds);
  EXPECT_EQ(broker.v3_outstanding_claims(), 0u);
}

// A broker restarting on the same spool directory reloads the persisted
// artifact instead of re-garbling: the client's cached view stays
// valid (hash-confirmed, never re-sent) and the evaluations-served
// counter keeps accumulating across processes.
TEST_F(ReusableBrokerTest, ArtifactSurvivesBrokerRestart) {
  const std::size_t bits = 8, rounds = 16;
  crypto::SystemRandom id_rng(Block{0x2000, 2});
  auto state = make_v3_client_state(id_rng);

  {
    svc::Broker broker(broker_config(bits, rounds, 1));
    std::thread run([&] { broker.run(); });
    const ClientStats st =
        run_client(broker_client(broker.port(), bits, state));
    run.join();
    ASSERT_TRUE(st.verified);
    EXPECT_EQ(broker.stats().server.reusable_garbles, 1u);
  }
  ASSERT_TRUE(state->reusable_view.has_value());
  const auto cached_sha = state->reusable_sha;

  svc::Broker broker2(broker_config(bits, rounds, 1));
  std::thread run2([&] { broker2.run(); });
  const ClientStats st2 =
      run_client(broker_client(broker2.port(), bits, state));
  run2.join();
  EXPECT_TRUE(st2.verified);
  EXPECT_EQ(st2.output_value, demo_mac_reference(7, bits, rounds));

  const svc::BrokerStats bs2 = broker2.stats();
  EXPECT_EQ(bs2.server.reusable_garbles, 0u);      // reloaded, not re-garbled
  EXPECT_EQ(bs2.server.reusable_artifacts_sent, 0u);  // cache confirmed
  EXPECT_EQ(state->reusable_sha, cached_sha);
  // Both processes' sessions accumulate on the persisted counter.
  EXPECT_EQ(bs2.spool.reusable_evaluations, 2 * rounds);

  svc::SessionSpool spool(svc::SpoolConfig{spool_dir_.string(), 0, true});
  const auto entries = spool.reusable_entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].evaluations, 2 * rounds);
}

// Bit rot on the cached artifact: the next broker's checksum probe
// destroys the blob and garbles a replacement — clients holding the old
// view get the new artifact pushed (hash mismatch), never wrong tables.
TEST_F(ReusableBrokerTest, CorruptArtifactOnDiskForcesRegarble) {
  const std::size_t bits = 8, rounds = 16;
  crypto::SystemRandom id_rng(Block{0x3000, 3});
  auto state = make_v3_client_state(id_rng);

  {
    svc::Broker broker(broker_config(bits, rounds, 1));
    std::thread run([&] { broker.run(); });
    const ClientStats st =
        run_client(broker_client(broker.port(), bits, state));
    run.join();
    ASSERT_TRUE(st.verified);
  }
  const auto old_sha = state->reusable_sha;

  // Flip one byte mid-file; any flipped bit must fail the checksum.
  const fs::path victim = artifact_file();
  ASSERT_FALSE(victim.empty());
  {
    std::ifstream in(victim, std::ios::binary);
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_FALSE(blob.empty());
    blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x5A);
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  svc::Broker broker2(broker_config(bits, rounds, 1));
  std::thread run2([&] { broker2.run(); });
  const ClientStats st2 =
      run_client(broker_client(broker2.port(), bits, state));
  run2.join();
  EXPECT_TRUE(st2.verified);
  EXPECT_EQ(st2.output_value, demo_mac_reference(7, bits, rounds));

  const svc::BrokerStats bs2 = broker2.stats();
  EXPECT_EQ(bs2.spool.reusable_corrupt_discarded, 1u);
  EXPECT_EQ(bs2.server.reusable_garbles, 1u);        // fresh flips
  EXPECT_EQ(bs2.server.reusable_artifacts_sent, 1u); // old cache invalid
  EXPECT_NE(state->reusable_sha, old_sha);
  // The replacement artifact starts its evaluation count over.
  EXPECT_EQ(bs2.spool.reusable_evaluations, rounds);
}

}  // namespace
}  // namespace maxel::net
