// Fixed-point and matrix substrate tests, including the key coherence
// property: the plaintext fixed-point dot product is bit-identical to
// the garbled MAC netlist's reference semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "fixed/fixed.hpp"
#include "fixed/matrix.hpp"

namespace maxel::fixed {
namespace {

TEST(Fixed, EncodeDecodeRoundTrip) {
  const FixedFormat f{32, 16};
  for (const double v : {0.0, 1.0, -1.0, 3.14159, -2048.5, 0.0000152587890625}) {
    EXPECT_NEAR(decode(encode(v, f), f), v, f.resolution());
  }
}

TEST(Fixed, NegativeValuesAreTwosComplement) {
  const FixedFormat f{16, 8};
  const Word w = encode(-1.0, f);
  EXPECT_EQ(w, 0xFF00u);
  EXPECT_DOUBLE_EQ(decode(w, f), -1.0);
}

TEST(Fixed, OverflowThrows) {
  const FixedFormat f{16, 8};
  EXPECT_THROW((void)encode(200.0, f), std::overflow_error);
  EXPECT_THROW((void)encode(-200.0, f), std::overflow_error);
  EXPECT_NO_THROW((void)encode(127.0, f));
}

TEST(Fixed, AddWrapsLikeAccumulator) {
  const FixedFormat f{8, 0};
  EXPECT_EQ(add(200, 100, f), (200u + 100u) & 0xFF);
}

TEST(Fixed, RescaleDividesByScale) {
  const FixedFormat f{32, 8};
  const Word a = encode(3.5, f);
  const Word b = encode(2.0, f);
  const Word prod = mul_raw(a, b, f);  // 2*frac bits
  EXPECT_DOUBLE_EQ(decode(rescale(prod, f), f), 7.0);
  // Negative product path.
  const Word c = encode(-3.5, f);
  EXPECT_DOUBLE_EQ(decode(rescale(mul_raw(c, b, f), f), f), -7.0);
}

TEST(Fixed, DotRawMatchesGarbledMacSemantics) {
  const FixedFormat f{16, 4};
  const circuit::MacOptions mac{16, 16, true,
                                circuit::Builder::MulStructure::kTree};
  crypto::Prg prg(crypto::Block{321, 0});
  std::vector<Word> a(12), x(12);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = encode((static_cast<double>(prg.next_below(64)) - 32.0) / 16.0, f);
    x[i] = encode((static_cast<double>(prg.next_below(64)) - 32.0) / 16.0, f);
  }
  std::vector<std::uint64_t> av(a.begin(), a.end()), xv(x.begin(), x.end());
  EXPECT_EQ(dot_raw(a, x, f), circuit::dot_reference(av, xv, mac));
}

TEST(Fixed, VectorHelpers) {
  const FixedFormat f{32, 16};
  const std::vector<double> v = {1.5, -2.25, 0.0};
  EXPECT_EQ(decode_vector(encode_vector(v, f), f), v);
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Matrix at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);

  const Matrix p = a * at;  // 2x2
  EXPECT_DOUBLE_EQ(p(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 77.0);
}

TEST(Matrix, MatVecAndIdentity) {
  const Matrix i3 = Matrix::identity(3);
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_EQ(i3 * v, v);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
  EXPECT_THROW((void)(a * std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, CholeskySolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 3;
  const auto x = cholesky_solve(a, {10.0, 8.0});
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 5; a(1, 0) = 5; a(1, 1) = 1;
  EXPECT_THROW((void)cholesky_solve(a, {1.0, 1.0}), std::runtime_error);
}

TEST(Matrix, LeastSquaresRecoversPlantedModel) {
  crypto::Prg prg(crypto::Block{5150, 0});
  const std::size_t n = 200, d = 4;
  const std::vector<double> beta = {2.0, -1.0, 0.5, 3.0};
  Matrix x(n, d);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double yi = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double v =
          static_cast<double>(prg.next_below(2000)) / 1000.0 - 1.0;
      x(i, j) = v;
      yi += beta[j] * v;
    }
    y[i] = yi;
  }
  const auto est = least_squares(x, y);
  for (std::size_t j = 0; j < d; ++j) EXPECT_NEAR(est[j], beta[j], 1e-6);
}

TEST(Matrix, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_THROW((void)dot({1}, {1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace maxel::fixed
