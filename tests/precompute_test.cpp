// Precomputed garbling bank (Sec. 3's deployment model): sessions are
// produced offline, served online with the exact wire format of the
// on-demand garbler (the client cannot tell), sessions are single-use,
// and labels differ across sessions.
#include <gtest/gtest.h>

#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "ot/precomputed_ot.hpp"
#include "proto/precompute.hpp"
#include "proto/protocol.hpp"

namespace maxel::proto {
namespace {

using circuit::MacOptions;
using circuit::to_bits;
using crypto::Block;
using crypto::SystemRandom;

// Drives one full served session against the ordinary EvaluatorParty.
std::uint64_t serve_session(const circuit::Circuit& c,
                            PrecomputedSession session,
                            const std::vector<std::uint64_t>& a_vals,
                            const std::vector<std::uint64_t>& x_vals,
                            std::size_t bits) {
  auto [g_ch, e_ch] = MemoryChannel::create_pair();
  SystemRandom g_rng(Block{1, 1});
  SystemRandom e_rng(Block{1, 2});
  PrecomputedGarblerParty garbler(std::move(session), *g_ch, g_rng);
  ProtocolOptions opt;
  opt.ot = OtMode::kBase;  // PrecomputedGarblerParty serves base OT
  EvaluatorParty evaluator(c, opt, *e_ch, e_rng);

  std::vector<bool> out;
  for (std::size_t r = 0; r < a_vals.size(); ++r) {
    garbler.garble_and_send(to_bits(a_vals[r], bits));
    evaluator.receive_and_choose(to_bits(x_vals[r], bits));
    garbler.finish_ot();
    out = evaluator.evaluate_round();
  }
  return circuit::from_bits(out);
}

TEST(GarblingBank, ServedSessionComputesCorrectMac) {
  const MacOptions mac{8, 8, true};
  const circuit::Circuit c = circuit::make_mac_circuit(mac);
  GarblingBank bank(c, gc::Scheme::kHalfGates, /*rounds_per_session=*/6);
  SystemRandom rng(Block{3, 3});
  bank.precompute(2, rng);
  EXPECT_EQ(bank.stats().sessions_ready, 2u);
  EXPECT_GT(bank.stats().stored_bytes, 0u);

  crypto::Prg prg(Block{4, 4});
  std::vector<std::uint64_t> a(6), x(6);
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    a[i] = prg.next_u64() & 0xFF;
    x[i] = prg.next_u64() & 0xFF;
    expect = circuit::mac_reference(expect, a[i], x[i], mac);
  }
  EXPECT_EQ(serve_session(c, bank.take_session(), a, x, 8), expect);
  EXPECT_EQ(bank.stats().sessions_served, 1u);
  EXPECT_EQ(bank.stats().sessions_ready, 1u);
}

TEST(GarblingBank, SessionsAreSingleUseAndExhaust) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(8);
  GarblingBank bank(c, gc::Scheme::kHalfGates, 1);
  SystemRandom rng(Block{5, 5});
  bank.precompute(1, rng);
  (void)bank.take_session();
  EXPECT_THROW((void)bank.take_session(), std::runtime_error);
}

TEST(GarblingBank, FreshLabelsPerSession) {
  // Sec. 3: "even if the model does not change, new labels are required
  // for every garbling operation to ensure security."
  const circuit::Circuit c = circuit::make_millionaires_circuit(8);
  GarblingBank bank(c, gc::Scheme::kHalfGates, 1);
  SystemRandom rng(Block{6, 6});
  bank.precompute(2, rng);
  const auto s1 = bank.take_session();
  const auto s2 = bank.take_session();
  EXPECT_NE(s1.delta, s2.delta);
  EXPECT_NE(s1.rounds[0].garbler_labels0[0], s2.rounds[0].garbler_labels0[0]);
  EXPECT_NE(s1.rounds[0].tables.tables[0], s2.rounds[0].tables.tables[0]);
}

TEST(GarblingBank, ServedSessionExhaustsAfterItsRounds) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(4);
  GarblingBank bank(c, gc::Scheme::kHalfGates, 1);
  SystemRandom rng(Block{7, 7});
  bank.precompute(1, rng);

  auto [g_ch, e_ch] = MemoryChannel::create_pair();
  SystemRandom g_rng(Block{8, 1});
  PrecomputedGarblerParty garbler(bank.take_session(), *g_ch, g_rng);
  garbler.garble_and_send(to_bits(3, 4));
  EXPECT_THROW(garbler.garble_and_send(to_bits(3, 4)), std::runtime_error);
}


TEST(GarblingBank, FullyOfflineServingWithBeaverOt) {
  // Precomputed tables + precomputed OT: the online phase is transfer
  // and XOR only, and still decodes the right MAC.
  const MacOptions mac{8, 8, true};
  const circuit::Circuit c = circuit::make_mac_circuit(mac);
  GarblingBank bank(c, gc::Scheme::kHalfGates, 4);
  SystemRandom rng(Block{21, 1});
  bank.precompute(1, rng);

  // Offline OT pool over base OT.
  auto [po_s, po_r] = MemoryChannel::create_pair();
  SystemRandom s_rng(Block{21, 2});
  SystemRandom e_rng(Block{21, 3});
  ot::BaseOtSender pool_s(*po_s, s_rng);
  ot::BaseOtReceiver pool_r(*po_r, e_rng);
  const ot::OtPool pool =
      ot::precompute_ot_pool(pool_s, pool_r, 4 * 8, s_rng, e_rng);

  auto [g_ch, e_ch] = MemoryChannel::create_pair();
  ot::PrecomputedOtSender ot_s(*g_ch, pool.sender_pairs);
  ot::PrecomputedOtReceiver ot_r(*e_ch, pool.choices, pool.received);
  PrecomputedGarblerParty garbler(bank.take_session(), *g_ch, ot_s);
  EvaluatorParty evaluator(c, gc::Scheme::kHalfGates, *e_ch, ot_r);

  crypto::Prg prg(Block{22, 22});
  std::uint64_t expect = 0;
  std::vector<bool> out;
  for (int r = 0; r < 4; ++r) {
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    expect = circuit::mac_reference(expect, a, x, mac);
    garbler.garble_and_send(to_bits(a, 8));
    evaluator.receive_and_choose(to_bits(x, 8));
    garbler.finish_ot();
    out = evaluator.evaluate_round();
  }
  EXPECT_EQ(circuit::from_bits(out), expect);
}

TEST(GarblingBank, MillionairesEndToEnd) {
  const circuit::Circuit c = circuit::make_millionaires_circuit(16);
  GarblingBank bank(c, gc::Scheme::kHalfGates, 1);
  SystemRandom rng(Block{9, 9});
  bank.precompute(3, rng);

  const auto run = [&](std::uint64_t a, std::uint64_t b) {
    return serve_session(c, bank.take_session(), {a}, {b}, 16) != 0;
  };
  EXPECT_TRUE(run(100, 200));
  EXPECT_FALSE(run(200, 100));
  EXPECT_FALSE(run(150, 150));
}

}  // namespace
}  // namespace maxel::proto
