// Locality scheduling must be invisible to every garbling mode: the
// reordered netlist (circuit::schedule_for_locality) computes the same
// function, so all four session modes — precomputed, streaming, v3 and
// reusable — must decode bit-for-bit identical outputs on the scheduled
// and unscheduled circuits over the same random input vectors. Also
// pins the planned label layout (gc::LabelLayout::kPlanned) to the
// dense one: same seed, byte-identical round material.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/bristol.hpp"
#include "circuit/circuits.hpp"
#include "circuit/fp16.hpp"
#include "circuit/montgomery.hpp"
#include "circuit/netlist.hpp"
#include "circuit/optimize.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "gc/reusable.hpp"
#include "gc/streaming_evaluator.hpp"
#include "gc/streaming_garbler.hpp"
#include "gc/v3.hpp"
#include "proto/precompute.hpp"

namespace maxel {
namespace {

using circuit::Circuit;
using circuit::MacOptions;
using circuit::RoundInputs;
using crypto::Block;
using crypto::Prg;
using crypto::SystemRandom;

// Exact decoded-output representation for circuits of any output width
// (the Montgomery netlists exceed 64 output wires): 64-bit words,
// LSB-first.
using Words = std::vector<std::uint64_t>;

Words from_bits(const std::vector<bool>& bits) {
  Words v(bits.empty() ? 1 : (bits.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) v[i / 64] |= 1ull << (i % 64);
  return v;
}

std::vector<bool> mask_bits(const std::vector<bool>& v,
                            const std::vector<bool>& flips) {
  std::vector<bool> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] ^ flips[i];
  return out;
}

// Per-round decoded output words of the plaintext reference.
std::vector<Words> run_plain(const Circuit& c,
                             const std::vector<RoundInputs>& rounds) {
  std::vector<bool> state;
  for (const auto& d : c.dffs) state.push_back(d.init);
  std::vector<Words> out;
  for (const auto& r : rounds)
    out.push_back(
        from_bits(eval_plain(c, r.garbler_bits, r.evaluator_bits, &state)));
  return out;
}

// Selects active input labels from a RoundMaterial and evaluates one
// round on a StreamingEvaluator (shared by the precomputed and
// streaming drivers below).
Words eval_material_round(const gc::RoundMaterial& m, const Block& delta,
                          const RoundInputs& in, gc::StreamingEvaluator& ev) {
  std::vector<Block> g(in.garbler_bits.size());
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = in.garbler_bits[i] ? m.garbler_labels0[i] ^ delta
                              : m.garbler_labels0[i];
  std::vector<Block> e(in.evaluator_bits.size());
  for (std::size_t i = 0; i < e.size(); ++i)
    e[i] = in.evaluator_bits[i] ? m.evaluator_pairs[i].second
                                : m.evaluator_pairs[i].first;
  const auto out = ev.eval_round(m.tables, g, e, m.fixed_labels);
  return from_bits(gc::decode_with_map(out, m.output_map));
}

std::vector<Words> run_precomputed(
    const Circuit& c, const std::vector<RoundInputs>& rounds,
    std::uint64_t seed) {
  SystemRandom rng(Block{seed, 0x9C0});
  const proto::PrecomputedSession s =
      proto::garble_session(c, gc::Scheme::kHalfGates, rounds.size(), rng);
  gc::StreamingEvaluator ev(c, gc::Scheme::kHalfGates);
  ev.set_initial_state_labels(s.initial_state_labels);
  std::vector<Words> out;
  for (std::size_t r = 0; r < rounds.size(); ++r)
    out.push_back(eval_material_round(s.rounds[r], s.delta, rounds[r], ev));
  return out;
}

std::vector<Words> run_streaming(
    const Circuit& c, const std::vector<RoundInputs>& rounds,
    std::uint64_t seed) {
  gc::StreamingGarbler sg(c, gc::Scheme::kHalfGates, rounds.size(),
                          {.chunk_rounds = 3, .queue_chunks = 2},
                          Block{seed, 0x57E});
  gc::StreamingEvaluator ev(c, gc::Scheme::kHalfGates);
  std::vector<Words> out;
  gc::SessionChunk chunk;
  while (sg.next_chunk(chunk)) {
    if (chunk.first_round == 0)
      ev.set_initial_state_labels(chunk.initial_state_labels);
    for (std::size_t i = 0; i < chunk.rounds.size(); ++i)
      out.push_back(eval_material_round(chunk.rounds[i], sg.delta(),
                                        rounds[chunk.first_round + i], ev));
  }
  return out;
}

std::vector<Words> run_v3(const Circuit& c,
                          const std::vector<RoundInputs>& rounds,
                          std::uint64_t seed) {
  SystemRandom rng(Block{seed, 0x13});
  const gc::V3Analysis an = gc::analyze_v3(c);
  Block delta = rng.next_block();
  delta.lo |= 1;
  const Block label_seed = rng.next_block();
  gc::V3Garbler garbler(c, an, delta, label_seed, rng);
  gc::V3Evaluator evaluator(c, an, label_seed);
  std::vector<Words> out;
  for (const auto& r : rounds) {
    const gc::V3RoundMaterial m = garbler.garble_round(r.garbler_bits);
    std::vector<Block> e_labels;
    for (std::size_t i = 0; i < r.evaluator_bits.size(); ++i)
      e_labels.push_back(r.evaluator_bits[i] ? m.evaluator_pairs[i].second
                                             : m.evaluator_pairs[i].first);
    const auto labels = evaluator.eval_round(m.rows, r.evaluator_bits,
                                             e_labels);
    out.push_back(from_bits(gc::decode_with_map(labels, m.output_map)));
  }
  return out;
}

std::vector<Words> run_reusable(const Circuit& c,
                                const std::vector<RoundInputs>& rounds,
                                std::uint64_t seed) {
  SystemRandom rng(Block{seed, 0x2E0});
  const auto rc = gc::make_reusable_circuit(c, rng);
  gc::ReusableEvaluator ev(c, rc.view);
  std::vector<Words> out;
  for (const auto& r : rounds)
    out.push_back(from_bits(
        ev.eval_round(mask_bits(r.garbler_bits, rc.garbler_flips),
                      mask_bits(r.evaluator_bits, rc.evaluator_flips))));
  return out;
}

std::vector<RoundInputs> random_rounds(const Circuit& c, std::size_t n,
                                       std::uint64_t seed) {
  Prg prg(Block{seed, 0xDA7A});
  std::vector<RoundInputs> rounds(n);
  for (auto& r : rounds) {
    r.garbler_bits = prg.bits(c.garbler_inputs.size());
    r.evaluator_bits = prg.bits(c.evaluator_inputs.size());
  }
  return rounds;
}

// The test proper: every mode, on the scheduled and the unscheduled
// netlist, over the same vectors, must reproduce the plain reference.
void check_all_modes(const Circuit& c, std::size_t n_rounds,
                     std::uint64_t seed) {
  const Circuit s = circuit::schedule_for_locality(c);
  ASSERT_EQ(s.gates.size(), c.gates.size());
  const auto rounds = random_rounds(c, n_rounds, seed);
  const auto expect = run_plain(c, rounds);
  ASSERT_EQ(run_plain(s, rounds), expect);  // schedule preserves semantics

  EXPECT_EQ(run_precomputed(c, rounds, seed), expect) << "precomputed/unsched";
  EXPECT_EQ(run_precomputed(s, rounds, seed), expect) << "precomputed/sched";
  EXPECT_EQ(run_streaming(c, rounds, seed), expect) << "stream/unsched";
  EXPECT_EQ(run_streaming(s, rounds, seed), expect) << "stream/sched";
  EXPECT_EQ(run_v3(c, rounds, seed), expect) << "v3/unsched";
  EXPECT_EQ(run_v3(s, rounds, seed), expect) << "v3/sched";
  EXPECT_EQ(run_reusable(c, rounds, seed), expect) << "reusable/unsched";
  EXPECT_EQ(run_reusable(s, rounds, seed), expect) << "reusable/sched";
}

TEST(ScheduleEquivalence, MacB8AllModes) {
  check_all_modes(circuit::make_mac_circuit(MacOptions{8, 8, true}), 12,
                  0xA11);
}

TEST(ScheduleEquivalence, MacB16UnsignedAllModes) {
  check_all_modes(circuit::make_mac_circuit(MacOptions{16, 16, false}), 6,
                  0xB22);
}

TEST(ScheduleEquivalence, DotProductAllModes) {
  check_all_modes(circuit::make_dot_product_circuit(3, MacOptions{8, 8, true}),
                  4, 0xC33);
}

TEST(ScheduleEquivalence, BristolImportAllModes) {
  // Foreign gate order: the multiplier round-tripped through Bristol
  // Fashion (INV lowering included), then scheduled.
  const Circuit imported = circuit::from_bristol(
      circuit::to_bristol(circuit::make_multiplier_circuit(MacOptions{8, 8, true})));
  check_all_modes(imported, 5, 0xD44);
}

TEST(ScheduleEquivalence, Fp16MacAllModes) {
  // The sequential FP16 MAC: 16-bit DFF accumulator, mul+add datapath
  // with barrel shifters — a very different gate mix from the integer
  // MACs above, pushed through all four session modes.
  check_all_modes(circuit::make_fp16_mac_circuit(), 8, 0xF16);
}

TEST(ScheduleEquivalence, MontgomeryAllModes) {
  // Montgomery REDC at 64 bits, and at 128 bits where every input,
  // output and accumulator bus is wider than a machine word.
  check_all_modes(
      circuit::make_montgomery_mul_circuit({64, {0xFFFFFFFFFFFFFFC5ull}}), 4,
      0x64ED);
  check_all_modes(circuit::make_montgomery_mul_circuit({128, {~0ull, ~0ull}}),
                  2, 0x128D);
}

TEST(ScheduleEquivalence, OptimizePassPreservesNewFamilies) {
  // optimize({.schedule = true}) on the new netlists: DCE+CSE+schedule
  // must preserve semantics through every session mode AND never make
  // the peak live-wire working set worse (the pass's contract).
  struct Case {
    const char* tag;
    Circuit c;
    std::size_t rounds;
    std::uint64_t seed;
  };
  Case cases[] = {
      {"fp16_mac", circuit::make_fp16_mac_circuit(), 6, 0x0F7},
      {"mont128",
       circuit::make_montgomery_mul_circuit({128, {0x10001ull, 0}}), 2,
       0x0D8},
  };
  for (auto& tc : cases) {
    SCOPED_TRACE(tc.tag);
    circuit::OptimizeStats os;
    circuit::ScheduleStats ss;
    const Circuit opt = circuit::optimize(tc.c, {.schedule = true}, &os, &ss);
    EXPECT_LE(ss.peak_live_after, ss.peak_live_before) << "never-worse guard";
    EXPECT_LE(os.ands_after, os.ands_before);
    const auto rounds = random_rounds(tc.c, tc.rounds, tc.seed);
    ASSERT_EQ(run_plain(opt, rounds), run_plain(tc.c, rounds));
    check_all_modes(opt, tc.rounds, tc.seed);
  }
}

TEST(ScheduleEquivalence, PeakLiveWiresEqualsEvaluationPlanSlots) {
  // circuit::peak_live_wires mirrors the evaluator's slot allocator —
  // the bench's peak-live metric IS the working-set size, scheduled or
  // not. The garbler plan additionally pins the protocol wires, so its
  // slot count dominates the evaluator's.
  for (const std::size_t bits : {8u, 16u, 32u}) {
    for (const bool scheduled : {false, true}) {
      Circuit c = circuit::make_mac_circuit(MacOptions{bits, bits, true});
      if (scheduled) c = circuit::schedule_for_locality(c);
      EXPECT_EQ(circuit::peak_live_wires(c), gc::plan_evaluation(c).num_slots)
          << "bits=" << bits << " scheduled=" << scheduled;
      EXPECT_GE(gc::plan_garbling(c).num_slots, gc::plan_evaluation(c).num_slots)
          << "bits=" << bits << " scheduled=" << scheduled;
    }
  }
}

TEST(ScheduleEquivalence, PlannedLayoutIsByteIdenticalToDense) {
  // The planned CircuitGarbler layout draws RNG labels in the same
  // order and hashes the same values as the dense layout — the round
  // material must match byte for byte, scheduled or not.
  for (const bool scheduled : {false, true}) {
    Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
    if (scheduled) c = circuit::schedule_for_locality(c);
    SystemRandom rng_dense(Block{0xE55, 1});
    SystemRandom rng_planned(Block{0xE55, 1});
    gc::CircuitGarbler dense(c, gc::Scheme::kHalfGates, rng_dense,
                             gc::LabelLayout::kDense);
    gc::CircuitGarbler planned(c, gc::Scheme::kHalfGates, rng_planned,
                               gc::LabelLayout::kPlanned);
    EXPECT_EQ(dense.delta(), planned.delta());
    EXPECT_LT(planned.label_buffer_bytes(), dense.label_buffer_bytes());
    for (int round = 0; round < 4; ++round) {
      const gc::RoundMaterial a = dense.garble_round_material();
      const gc::RoundMaterial b = planned.garble_round_material();
      EXPECT_EQ(a.tables.tables, b.tables.tables) << "round " << round;
      EXPECT_EQ(a.garbler_labels0, b.garbler_labels0);
      EXPECT_EQ(a.evaluator_pairs, b.evaluator_pairs);
      EXPECT_EQ(a.fixed_labels, b.fixed_labels);
      EXPECT_EQ(a.output_map, b.output_map);
    }
    EXPECT_EQ(dense.initial_state_labels(), planned.initial_state_labels());
  }
}

}  // namespace
}  // namespace maxel
