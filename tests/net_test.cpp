// Network subsystem tests: TcpChannel loopback transport, frame-layer
// fuzzing (every malformed stream must surface as a typed net error,
// never a hang), handshake rejection, and the full server/client
// session over 127.0.0.1 — whose decoded MAC must match the in-process
// ThreadedChannel protocol path bit for bit.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "circuit/circuits.hpp"
#include "sweep_env.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "net/client.hpp"
#include "net/demo_inputs.hpp"
#include "net/error.hpp"
#include "net/handshake.hpp"
#include "net/server.hpp"
#include "net/tcp_channel.hpp"
#include "net/v3_service.hpp"
#include "proto/protocol.hpp"
#include "proto/threaded_channel.hpp"

namespace maxel::net {
namespace {

using crypto::Block;

// Raw (frame-oblivious) socket for injecting malformed byte streams.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  return fd;
}

void raw_write(int fd, const void* data, std::size_t n) {
  EXPECT_EQ(::send(fd, data, n, 0), static_cast<ssize_t>(n));
}

TcpOptions fast_opts() {
  TcpOptions o;
  o.recv_timeout_ms = 5'000;  // tests must fail fast, never hang
  o.connect_attempts = 3;
  o.connect_backoff_ms = 10;
  return o;
}

// ---------------------------------------------------------------------------
// Transport: loopback round trips through the Channel API.

TEST(TcpChannel, LoopbackRoundTrip) {
  TcpListener lis(0, "127.0.0.1");
  const TcpOptions opts = fast_opts();

  std::thread peer([&] {
    auto ch = lis.accept(5'000, opts);
    ASSERT_NE(ch, nullptr);
    // Echo in the protocol's own vocabulary: the recv calls auto-flush
    // the pending replies, exactly like a protocol phase boundary.
    const std::uint64_t v = ch->recv_u64();
    ch->send_u64(v + 1);
    const auto blocks = ch->recv_blocks();
    ch->send_blocks(blocks);
    const auto bits = ch->recv_bits();
    ch->send_bits(bits);
    ch->flush();
  });

  auto ch = TcpChannel::connect("127.0.0.1", lis.port(), opts);
  ch->send_u64(41);
  EXPECT_EQ(ch->recv_u64(), 42u);

  std::vector<Block> blocks;
  for (std::uint64_t i = 0; i < 300; ++i) blocks.push_back(Block{i, ~i});
  ch->send_blocks(blocks);
  const auto echoed = ch->recv_blocks();
  ASSERT_EQ(echoed.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i)
    EXPECT_EQ(echoed[i], blocks[i]) << "block " << i;

  std::vector<bool> bits;
  for (int i = 0; i < 99; ++i) bits.push_back((i * 7) % 3 == 0);
  ch->send_bits(bits);
  EXPECT_EQ(ch->recv_bits(), bits);

  peer.join();
  // A pure echo: payload counters are frame-independent and symmetric.
  EXPECT_EQ(ch->bytes_sent(), ch->bytes_received());
}

TEST(TcpChannel, SmallFramesReassembleLargePayload) {
  TcpListener lis(0, "127.0.0.1");
  TcpOptions opts = fast_opts();
  opts.flush_threshold_bytes = 64;  // force many tiny frames
  opts.max_frame_bytes = 128;       // and exercise the frame splitter

  std::vector<std::uint8_t> payload(10'000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);

  std::thread peer([&] {
    auto ch = lis.accept(5'000, opts);
    ASSERT_NE(ch, nullptr);
    std::vector<std::uint8_t> got(payload.size());
    ch->recv_bytes(got.data(), got.size());
    EXPECT_EQ(got, payload);
    ch->send_u64(1);  // release the client
    ch->flush();
  });

  auto ch = TcpChannel::connect("127.0.0.1", lis.port(), opts);
  ch->send_bytes(payload.data(), payload.size());
  EXPECT_EQ(ch->recv_u64(), 1u);
  peer.join();
}

TEST(TcpChannel, ConnectToDeadPortIsTypedError) {
  std::uint16_t dead_port;
  {
    TcpListener lis(0, "127.0.0.1");
    dead_port = lis.port();
  }  // closed: nobody listens here now
  TcpOptions opts;
  opts.connect_attempts = 2;
  opts.connect_backoff_ms = 5;
  opts.connect_timeout_ms = 500;
  EXPECT_THROW(TcpChannel::connect("127.0.0.1", dead_port, opts),
               ConnectError);
}

// ---------------------------------------------------------------------------
// Framing fuzz: every way a peer can mangle the stream maps to a typed
// error, with the recv deadline guaranteeing no test ever hangs.

TEST(TcpFraming, TruncatedFrameIsFramingError) {
  TcpListener lis(0, "127.0.0.1");
  const int fd = raw_connect(lis.port());
  auto ch = lis.accept(5'000, fast_opts());
  ASSERT_NE(ch, nullptr);

  const std::uint32_t claimed = 100;
  std::uint8_t partial[10] = {};
  raw_write(fd, &claimed, 4);
  raw_write(fd, partial, sizeof(partial));
  ::close(fd);  // EOF mid-frame

  std::uint8_t buf[100];
  EXPECT_THROW(ch->recv_bytes(buf, sizeof(buf)), FramingError);
}

TEST(TcpFraming, TruncatedHeaderIsFramingError) {
  TcpListener lis(0, "127.0.0.1");
  const int fd = raw_connect(lis.port());
  auto ch = lis.accept(5'000, fast_opts());
  ASSERT_NE(ch, nullptr);

  const std::uint8_t half_header[2] = {0x10, 0x00};
  raw_write(fd, half_header, sizeof(half_header));
  ::close(fd);

  std::uint8_t b;
  EXPECT_THROW(ch->recv_bytes(&b, 1), FramingError);
}

TEST(TcpFraming, OversizeLengthIsFramingError) {
  TcpListener lis(0, "127.0.0.1");
  TcpOptions opts = fast_opts();
  opts.max_frame_bytes = 1'024;
  const int fd = raw_connect(lis.port());
  auto ch = lis.accept(5'000, opts);
  ASSERT_NE(ch, nullptr);

  const std::uint32_t huge = 1u << 20;  // 1 MiB claim against a 1 KiB cap
  raw_write(fd, &huge, 4);

  std::uint8_t b;
  EXPECT_THROW(ch->recv_bytes(&b, 1), FramingError);
  ::close(fd);
}

TEST(TcpFraming, ZeroLengthFrameIsFramingError) {
  TcpListener lis(0, "127.0.0.1");
  const int fd = raw_connect(lis.port());
  auto ch = lis.accept(5'000, fast_opts());
  ASSERT_NE(ch, nullptr);

  const std::uint32_t zero = 0;
  raw_write(fd, &zero, 4);

  std::uint8_t b;
  EXPECT_THROW(ch->recv_bytes(&b, 1), FramingError);
  ::close(fd);
}

TEST(TcpFraming, CleanEofIsPeerClosed) {
  TcpListener lis(0, "127.0.0.1");
  const int fd = raw_connect(lis.port());
  auto ch = lis.accept(5'000, fast_opts());
  ASSERT_NE(ch, nullptr);

  ::close(fd);  // orderly hangup at a frame boundary

  std::uint8_t b;
  EXPECT_THROW(ch->recv_bytes(&b, 1), PeerClosedError);
}

TEST(TcpFraming, SilentPeerIsTimeoutError) {
  TcpListener lis(0, "127.0.0.1");
  TcpOptions opts = fast_opts();
  opts.recv_timeout_ms = 100;
  const int fd = raw_connect(lis.port());
  auto ch = lis.accept(5'000, opts);
  ASSERT_NE(ch, nullptr);

  std::uint8_t b;
  EXPECT_THROW(ch->recv_bytes(&b, 1), TimeoutError);  // peer never writes
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Handshake: mismatches produce a typed rejection on both ends.

struct HandshakePair {
  std::unique_ptr<TcpChannel> client;
  std::unique_ptr<TcpChannel> server;
};

HandshakePair make_pair_over_loopback(TcpListener& lis) {
  HandshakePair p;
  std::thread t([&] { p.server = lis.accept(5'000, fast_opts()); });
  p.client = TcpChannel::connect("127.0.0.1", lis.port(), fast_opts());
  t.join();
  return p;
}

// Runs a doctored hello against a server expectation; returns the
// reject code each side observed.
std::pair<RejectCode, RejectCode> run_handshake(const ClientHello& hello,
                                                const ServerExpectation& ex) {
  TcpListener lis(0, "127.0.0.1");
  HandshakePair p = make_pair_over_loopback(lis);

  RejectCode server_code = RejectCode::kOk;
  std::thread server([&] {
    try {
      server_handshake(*p.server, ex);
    } catch (const HandshakeError& e) {
      server_code = e.code();
    }
  });

  RejectCode client_code = RejectCode::kOk;
  try {
    client_handshake(*p.client, hello);
  } catch (const HandshakeError& e) {
    client_code = e.code();
  }
  server.join();
  return {client_code, server_code};
}

ServerExpectation demo_expectation(std::size_t bits) {
  ServerExpectation ex;
  ex.scheme = gc::Scheme::kHalfGates;
  ex.bit_width = static_cast<std::uint32_t>(bits);
  ex.circuit_hash = circuit_fingerprint(
      circuit::make_mac_circuit(circuit::MacOptions{bits, bits, true}));
  ex.rounds_per_session = 16;
  return ex;
}

ClientHello demo_hello(const ServerExpectation& ex) {
  ClientHello h;
  h.scheme = static_cast<std::uint8_t>(ex.scheme);
  h.ot = static_cast<std::uint8_t>(OtChoice::kIknp);
  h.bit_width = ex.bit_width;
  h.circuit_hash = ex.circuit_hash;
  return h;
}

TEST(Handshake, MatchingHelloNegotiatesRounds) {
  const ServerExpectation ex = demo_expectation(8);
  TcpListener lis(0, "127.0.0.1");
  HandshakePair p = make_pair_over_loopback(lis);

  std::thread server([&] { server_handshake(*p.server, ex); });
  // The server dictates rounds regardless of the client's request.
  ClientHello h = demo_hello(ex);
  h.rounds = 9'999;
  EXPECT_EQ(client_handshake(*p.client, h), ex.rounds_per_session);
  server.join();
}

TEST(Handshake, WrongMagicRejected) {
  const ServerExpectation ex = demo_expectation(8);
  ClientHello h = demo_hello(ex);
  h.magic = 0xDEADBEEFDEADBEEFull;
  const auto [client_code, server_code] = run_handshake(h, ex);
  EXPECT_EQ(client_code, RejectCode::kBadMagic);
  EXPECT_EQ(server_code, RejectCode::kBadMagic);
}

TEST(Handshake, VersionMismatchRejected) {
  const ServerExpectation ex = demo_expectation(8);
  ClientHello h = demo_hello(ex);
  h.version = kProtocolVersion + 7;
  const auto [client_code, server_code] = run_handshake(h, ex);
  EXPECT_EQ(client_code, RejectCode::kVersionMismatch);
  EXPECT_EQ(server_code, RejectCode::kVersionMismatch);
}

TEST(Handshake, CircuitMismatchRejected) {
  const ServerExpectation ex = demo_expectation(8);
  ClientHello h = demo_hello(ex);
  h.circuit_hash[0] ^= 1;  // single-bit fingerprint divergence
  const auto [client_code, server_code] = run_handshake(h, ex);
  EXPECT_EQ(client_code, RejectCode::kCircuitMismatch);
  EXPECT_EQ(server_code, RejectCode::kCircuitMismatch);
}

TEST(Handshake, UnknownModeByteRejected) {
  const ServerExpectation ex = demo_expectation(8);
  ClientHello h = demo_hello(ex);
  h.mode = 2;  // neither precomputed (0) nor stream (1)
  const auto [client_code, server_code] = run_handshake(h, ex);
  EXPECT_EQ(client_code, RejectCode::kBadMode);
  EXPECT_EQ(server_code, RejectCode::kBadMode);
}

TEST(Handshake, StreamModeRefusedWhenDisallowed) {
  ServerExpectation ex = demo_expectation(8);
  ex.allow_stream = false;
  ClientHello h = demo_hello(ex);
  h.mode = static_cast<std::uint8_t>(SessionMode::kStream);
  const auto [client_code, server_code] = run_handshake(h, ex);
  EXPECT_EQ(client_code, RejectCode::kBadMode);
  EXPECT_EQ(server_code, RejectCode::kBadMode);
}

TEST(Handshake, StreamModeAcceptedWhenAllowed) {
  const ServerExpectation ex = demo_expectation(8);
  TcpListener lis(0, "127.0.0.1");
  HandshakePair p = make_pair_over_loopback(lis);

  std::thread server([&] {
    const ClientHello seen = server_handshake(*p.server, ex);
    EXPECT_EQ(seen.mode, static_cast<std::uint8_t>(SessionMode::kStream));
  });
  ClientHello h = demo_hello(ex);
  h.mode = static_cast<std::uint8_t>(SessionMode::kStream);
  EXPECT_EQ(client_handshake(*p.client, h), ex.rounds_per_session);
  server.join();
}

TEST(Handshake, FingerprintIgnoresNameButNotStructure) {
  circuit::Circuit a =
      circuit::make_mac_circuit(circuit::MacOptions{8, 8, true});
  circuit::Circuit b = a;
  b.name = "renamed";
  EXPECT_EQ(circuit_fingerprint(a), circuit_fingerprint(b));
  const circuit::Circuit c =
      circuit::make_mac_circuit(circuit::MacOptions{16, 16, true});
  EXPECT_NE(circuit_fingerprint(a), circuit_fingerprint(c));
}

// ---------------------------------------------------------------------------
// Full service: server + client threads over 127.0.0.1.

ServerConfig quiet_server_config(std::size_t bits, std::size_t rounds) {
  ServerConfig cfg;
  cfg.bind_addr = "127.0.0.1";
  cfg.port = 0;  // ephemeral
  cfg.bits = bits;
  cfg.rounds_per_session = rounds;
  cfg.bank_low_watermark = 1;
  cfg.bank_batch = 1;
  cfg.precompute_cores = 2;
  cfg.max_sessions = 1;
  cfg.verbose = false;
  return cfg;
}

ClientConfig quiet_client_config(std::uint16_t port, std::size_t bits) {
  ClientConfig cfg;
  cfg.port = port;
  cfg.bits = bits;
  cfg.verbose = false;
  return cfg;
}

// Runs the same demo-seeded MAC session through the in-process
// ThreadedChannel protocol path (no sockets, the pre-existing reference
// implementation) and returns the decoded accumulator.
std::uint64_t in_process_reference(std::size_t bits, std::size_t rounds,
                                   std::uint64_t seed) {
  const circuit::Circuit c =
      circuit::make_mac_circuit(circuit::MacOptions{bits, bits, true});
  auto [g_ch, e_ch] = proto::ThreadedChannel::create_pair();
  proto::ProtocolOptions opt;
  opt.ot = proto::OtMode::kIknp;

  std::thread garbler([&, g = std::move(g_ch)]() mutable {
    crypto::SystemRandom rng(Block{seed, 100});
    proto::GarblerParty garbler(c, opt, *g, rng);
    garbler.setup_step2();
    garbler.setup_step4();
    DemoInputStream a(seed, kGarblerStream, bits);
    for (std::size_t r = 0; r < rounds; ++r) {
      garbler.garble_and_send(a.next_bits());
      garbler.finish_ot();
    }
  });

  std::uint64_t decoded = 0;
  std::thread evaluator([&, e = std::move(e_ch)]() mutable {
    crypto::SystemRandom rng(Block{seed, 200});
    proto::EvaluatorParty evaluator(c, opt, *e, rng);
    evaluator.setup_step1();
    evaluator.setup_step3();
    DemoInputStream x(seed, kEvaluatorStream, bits);
    std::vector<bool> out;
    for (std::size_t r = 0; r < rounds; ++r) {
      evaluator.receive_and_choose(x.next_bits());
      out = evaluator.evaluate_round();
    }
    decoded = circuit::from_bits(out);
  });

  garbler.join();
  evaluator.join();
  return decoded;
}

TEST(NetService, EndToEndMatchesInProcessPathBitForBit) {
  const std::size_t bits = 8, rounds = 120;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  ClientConfig ccfg = quiet_client_config(server.port(), bits);
  const ClientStats cs = run_client(ccfg);
  serve.join();

  // The decoded MAC over TCP equals the in-process ThreadedChannel
  // protocol run on identical inputs, and both equal the plaintext fold.
  EXPECT_EQ(cs.output_value,
            in_process_reference(bits, rounds, ccfg.demo_seed));
  EXPECT_EQ(cs.output_value,
            demo_mac_reference(ccfg.demo_seed, bits, rounds));
  EXPECT_TRUE(cs.checked);
  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(cs.rounds, rounds);

  // Payload byte accounting agrees exactly across the wire.
  const ServerStats& ss = server.stats();
  EXPECT_EQ(ss.sessions_served, 1u);
  EXPECT_EQ(ss.rounds_served, rounds);
  EXPECT_EQ(cs.bytes_received, ss.bytes_sent);
  EXPECT_EQ(cs.bytes_sent, ss.bytes_received);
  EXPECT_GE(ss.sessions_precomputed, 1u);
  EXPECT_GT(cs.working_set_bytes, 0u);
}

TEST(NetService, BaseOtSession) {
  const std::size_t bits = 8, rounds = 20;
  Server server(quiet_server_config(bits, rounds));
  std::thread serve([&] { server.serve(); });

  ClientConfig ccfg = quiet_client_config(server.port(), bits);
  ccfg.ot = OtChoice::kBase;
  const ClientStats cs = run_client(ccfg);
  serve.join();

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(cs.output_value, demo_mac_reference(ccfg.demo_seed, bits, rounds));
  EXPECT_EQ(cs.bytes_received, server.stats().bytes_sent);
  EXPECT_EQ(cs.bytes_sent, server.stats().bytes_received);
}

TEST(NetService, MismatchedClientRejectedAndServerSurvives) {
  const std::size_t bits = 16, rounds = 12;
  Server server(quiet_server_config(bits, rounds));
  std::thread serve([&] { server.serve(); });

  // Wrong bit width: typed rejection, not a hang or stream corruption.
  ClientConfig bad = quiet_client_config(server.port(), 8);
  try {
    run_client(bad);
    FAIL() << "mismatched client was accepted";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.code(), RejectCode::kBitWidthMismatch);
  }

  // The server shrugs it off and serves the next, well-formed client.
  const ClientStats cs = run_client(quiet_client_config(server.port(), bits));
  serve.join();

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(server.stats().handshakes_rejected, 1u);
  EXPECT_EQ(server.stats().sessions_served, 1u);
}

// ---------------------------------------------------------------------------
// Streaming mode: same service, garble-while-transfer delivery.

TEST(NetService, StreamSessionMatchesPrecomputedBitForBit) {
  const std::size_t bits = 8, rounds = 120;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  scfg.max_sessions = 2;
  scfg.stream_chunk_rounds = 16;
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  ClientConfig pre = quiet_client_config(server.port(), bits);
  const ClientStats ps = run_client(pre);

  ClientConfig str = quiet_client_config(server.port(), bits);
  str.mode = SessionMode::kStream;
  const ClientStats ss = run_client(str);
  serve.join();

  // Identical demo seed, identical decoded MAC: delivery mode must not
  // change a single output bit.
  EXPECT_TRUE(ps.verified);
  EXPECT_TRUE(ss.verified);
  EXPECT_EQ(ss.output_value, ps.output_value);
  EXPECT_EQ(ss.output_value, demo_mac_reference(str.demo_seed, bits, rounds));
  EXPECT_EQ(ss.rounds, rounds);

  // 120 rounds at 16 per chunk: ceil -> 8 chunk frames.
  EXPECT_EQ(ss.chunks_received, (rounds + 15) / 16);
  EXPECT_GT(ss.first_table_seconds, 0.0);

  const ServerStats& st = server.stats();
  EXPECT_EQ(st.sessions_served, 2u);
  EXPECT_EQ(st.stream_sessions_served, 1u);
  EXPECT_EQ(st.rounds_served, 2 * rounds);
  EXPECT_GT(st.peak_resident_tables, 0u);
  // Both sessions' payload bytes, both directions, must balance.
  EXPECT_EQ(ps.bytes_received + ss.bytes_received, st.bytes_sent);
  EXPECT_EQ(ps.bytes_sent + ss.bytes_sent, st.bytes_received);
}

TEST(NetService, StreamSessionWithBaseOt) {
  const std::size_t bits = 8, rounds = 20;
  Server server(quiet_server_config(bits, rounds));
  std::thread serve([&] { server.serve(); });

  ClientConfig cfg = quiet_client_config(server.port(), bits);
  cfg.mode = SessionMode::kStream;
  cfg.ot = OtChoice::kBase;
  const ClientStats cs = run_client(cfg);
  serve.join();

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(cs.output_value, demo_mac_reference(cfg.demo_seed, bits, rounds));
  EXPECT_EQ(cs.bytes_received, server.stats().bytes_sent);
  EXPECT_EQ(cs.bytes_sent, server.stats().bytes_received);
}

TEST(NetService, StreamRefusedByNoStreamServerWhichSurvives) {
  const std::size_t bits = 8, rounds = 12;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  scfg.allow_stream = false;
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  ClientConfig str = quiet_client_config(server.port(), bits);
  str.mode = SessionMode::kStream;
  try {
    run_client(str);
    FAIL() << "stream client was accepted by a --no-stream server";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.code(), RejectCode::kBadMode);
  }

  // The refusal is per-connection: a precomputed client still gets
  // served and the server exits cleanly.
  const ClientStats cs = run_client(quiet_client_config(server.port(), bits));
  serve.join();

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(server.stats().handshakes_rejected, 1u);
  EXPECT_EQ(server.stats().sessions_served, 1u);
  EXPECT_EQ(server.stats().stream_sessions_served, 0u);
}

// ---------------------------------------------------------------------------
// Property sweep: randomized session shapes against the plaintext
// reference. Bit widths, vector lengths (rounds) and demo seeds are
// drawn from a pinned PRG stream and logged per trial, so any failure
// reproduces exactly from the trace line.

TEST(NetService, RandomizedSessionsMatchPlaintextReference) {
  const std::uint64_t kSweepSeed = test::sweep_seed(0x5EED5EED);
  crypto::Prg prg(Block{kSweepSeed, 0});
  const int n_trials = test::sweep_trials(4);
  for (int trial = 0; trial < n_trials; ++trial) {
    const std::size_t bits = 4 + prg.next_u64() % 13;    // 4..16
    const std::size_t rounds = 5 + prg.next_u64() % 28;  // 5..32
    const std::uint64_t seed = prg.next_u64();
    const bool stream = prg.next_bit();
    SCOPED_TRACE("sweep_seed=" + std::to_string(kSweepSeed) +
                 " trial=" + std::to_string(trial) +
                 " bits=" + std::to_string(bits) +
                 " rounds=" + std::to_string(rounds) +
                 " demo_seed=" + std::to_string(seed) +
                 (stream ? " mode=stream" : " mode=precomputed"));

    ServerConfig scfg = quiet_server_config(bits, rounds);
    scfg.demo_seed = seed;
    Server server(scfg);
    std::thread serve([&] { server.serve(); });

    ClientConfig ccfg = quiet_client_config(server.port(), bits);
    ccfg.demo_seed = seed;
    if (stream) ccfg.mode = SessionMode::kStream;
    const ClientStats cs = run_client(ccfg);
    serve.join();

    // Three-way agreement: TCP session == in-process protocol run ==
    // plaintext fixed-point MAC fold, for this randomized shape.
    EXPECT_TRUE(cs.verified);
    EXPECT_EQ(cs.output_value, demo_mac_reference(seed, bits, rounds));
    EXPECT_EQ(cs.output_value, in_process_reference(bits, rounds, seed));
  }
}

// ---------------------------------------------------------------------------
// Stalled-peer regressions: a peer that stops reading (or never writes)
// must surface as a typed error within the configured deadline on BOTH
// sides — the send path historically blocked forever in ::send once the
// socket buffers filled.

TEST(TcpChannel, SenderUnblocksWhenPeerStopsDraining) {
  TcpListener lis(0, "127.0.0.1");
  TcpOptions opts = fast_opts();
  opts.send_timeout_ms = 300;
  opts.flush_threshold_bytes = 1 << 12;  // flush eagerly into the kernel
  const int fd = raw_connect(lis.port());  // this peer never reads
  auto ch = lis.accept(5'000, opts);
  ASSERT_NE(ch, nullptr);
  // Shrink our send buffer so the kernel back-pressures quickly.
  int snd = 4'096;
  ::setsockopt(ch->fd(), SOL_SOCKET, SO_SNDBUF, &snd, sizeof(snd));

  std::vector<std::uint8_t> chunk(1 << 16, 0xAB);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    // Enough volume to overrun both socket buffers many times over; the
    // old blocking send would wedge here forever.
    for (int i = 0; i < 4'096; ++i) {
      ch->send_bytes(chunk.data(), chunk.size());
      ch->flush();
    }
    FAIL() << "256 MiB vanished into a peer that never reads";
  } catch (const TimeoutError&) {
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 10.0);  // deadline honored, not a 30 s default
  ::close(fd);
}

TEST(NetService, SilentClientIsEvictedAndServerKeepsServing) {
  ServerConfig cfg = quiet_server_config(8, 8);
  cfg.idle_timeout_ms = 200;
  Server server(cfg);
  std::thread serve([&] { server.serve(); });

  // Connect and never send the hello: the sequential server must evict
  // this connection at the idle deadline instead of pinning on it...
  const int fd = raw_connect(server.port());
  // ...and then serve the well-behaved client queued behind it.
  const ClientStats cs = run_client(quiet_client_config(server.port(), 8));
  serve.join();
  ::close(fd);

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(server.stats().sessions_served, 1u);
  EXPECT_EQ(server.stats().idle_timeouts, 1u);
  EXPECT_GE(server.stats().connection_errors, 1u);
}

TEST(NetService, UnresponsiveServerYieldsTimeoutNotHang) {
  TcpListener lis(0, "127.0.0.1");
  std::unique_ptr<TcpChannel> held;  // accepted, then left silent
  std::thread acceptor([&] { held = lis.accept(5'000, fast_opts()); });

  ClientConfig cfg = quiet_client_config(lis.port(), 8);
  cfg.tcp.recv_timeout_ms = 200;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(run_client(cfg), TimeoutError);  // handshake reply never comes
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0);
  acceptor.join();
}

// Shutdown-latency regression: the accept loop polls with
// cfg.accept_poll_ms rather than blocking in accept(2), so
// request_stop() on an idle server must take effect within roughly one
// poll period — not hang until the next client happens to connect.
TEST(NetService, IdleServeStopsWithinAcceptPollPeriod) {
  ServerConfig cfg = quiet_server_config(8, 4);
  cfg.max_sessions = 0;     // run until stopped
  cfg.accept_poll_ms = 50;  // tight poll so the bound below is meaningful
  Server server(cfg);
  std::thread serve([&] { server.serve(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  server.request_stop();
  serve.join();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // One poll period plus generous CI slack; a blocking accept would sit
  // here forever with no connection to wake it.
  EXPECT_LT(stop_seconds, 2.0);
  EXPECT_EQ(server.stats().sessions_served, 0u);
}

// ---------------------------------------------------------------------------
// Protocol v3: slim-wire sessions and cross-session OT amortization.

TEST(HandshakeV3, V3HelloNegotiatesWhenAllowed) {
  ServerExpectation ex = demo_expectation(8);
  ex.allow_v3 = true;
  TcpListener lis(0, "127.0.0.1");
  HandshakePair p = make_pair_over_loopback(lis);

  const Block client_id{0x1D, 0xC0FFEE};
  std::thread server([&] {
    const V23Handshake hs = server_handshake_v23(*p.server, ex);
    EXPECT_EQ(hs.version, kProtocolVersionV3);
    ASSERT_TRUE(hs.ext.has_value());
    EXPECT_EQ(hs.ext->client_id, client_id);
    EXPECT_FALSE(hs.ext->has_ticket);
  });
  HelloExtV3 ext;
  ext.client_id = client_id;
  EXPECT_EQ(client_handshake_v3(*p.client, demo_hello(ex), ext),
            ex.rounds_per_session);
  server.join();
}

TEST(HandshakeV3, V3HelloRejectedByV2OnlyServer) {
  const ServerExpectation ex = demo_expectation(8);  // allow_v3 defaults off
  TcpListener lis(0, "127.0.0.1");
  HandshakePair p = make_pair_over_loopback(lis);

  RejectCode server_code = RejectCode::kOk;
  std::thread server([&] {
    try {
      server_handshake_v23(*p.server, ex);
    } catch (const HandshakeError& e) {
      server_code = e.code();
    }
  });
  HelloExtV3 ext;
  ext.client_id = Block{1, 2};
  RejectCode client_code = RejectCode::kOk;
  try {
    client_handshake_v3(*p.client, demo_hello(ex), ext);
  } catch (const HandshakeError& e) {
    client_code = e.code();
  }
  server.join();
  // Both sides see the typed version mismatch — the signal the client
  // uses to redial with a v2 hello.
  EXPECT_EQ(client_code, RejectCode::kVersionMismatch);
  EXPECT_EQ(server_code, RejectCode::kVersionMismatch);
}

TEST(NetV3, SessionMatchesV2BitForBitAndSlimsTheWire) {
  const std::size_t bits = 16, rounds = 16;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  scfg.max_sessions = 2;
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  ClientConfig v2 = quiet_client_config(server.port(), bits);
  const ClientStats s2 = run_client(v2);

  ClientConfig v3 = quiet_client_config(server.port(), bits);
  v3.protocol = kProtocolVersionV3;
  const ClientStats s3 = run_client(v3);
  serve.join();

  // Same demo seed: the slim wire format must not change one output bit.
  EXPECT_TRUE(s2.verified);
  EXPECT_TRUE(s3.verified);
  EXPECT_EQ(s3.output_value, s2.output_value);
  EXPECT_EQ(s3.output_value, demo_mac_reference(v3.demo_seed, bits, rounds));
  EXPECT_EQ(s3.protocol_used, kProtocolVersionV3);
  EXPECT_FALSE(s3.pool_resumed);

  // ISSUE acceptance: the v3 session body (setup excluded — that is
  // amortized across sessions, measured separately below) moves well
  // under 0.65x the v2 bytes for the same work.
  const std::uint64_t v2_total = s2.bytes_sent + s2.bytes_received;
  const std::uint64_t v3_body =
      s3.bytes_sent + s3.bytes_received - s3.setup_bytes;
  EXPECT_LT(v3_body, (v2_total * 65) / 100)
      << "v3 body " << v3_body << " vs v2 total " << v2_total;

  const ServerStats ss = server.stats();
  EXPECT_EQ(ss.sessions_served, 2u);
  EXPECT_EQ(ss.v3_sessions_served, 1u);
  EXPECT_EQ(ss.v3_fresh_pools, 1u);
  EXPECT_EQ(server.v3_outstanding_claims(), 0u);
  EXPECT_EQ(s3.bytes_received, ss.bytes_sent - s2.bytes_received);
  EXPECT_EQ(s3.bytes_sent, ss.bytes_received - s2.bytes_sent);
}

TEST(NetV3, ResumptionSkipsBaseOtAndShrinksSetup) {
  const std::size_t bits = 8, rounds = 16;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  scfg.max_sessions = 3;
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  // One client state shared across three separate run_client calls: the
  // base OT and the pool extension are paid once, then amortized.
  crypto::SystemRandom id_rng(Block{77, 7});
  auto state = make_v3_client_state(id_rng);
  ClientConfig cfg = quiet_client_config(server.port(), bits);
  cfg.protocol = kProtocolVersionV3;
  cfg.v3_state = state;

  const ClientStats s1 = run_client(cfg);
  const ClientStats s2 = run_client(cfg);
  const ClientStats s3 = run_client(cfg);
  serve.join();

  EXPECT_TRUE(s1.verified);
  EXPECT_TRUE(s2.verified);
  EXPECT_TRUE(s3.verified);
  EXPECT_FALSE(s1.pool_resumed);
  EXPECT_TRUE(s2.pool_resumed);
  EXPECT_TRUE(s3.pool_resumed);

  // A resumed setup is a ticket round-trip, not a base OT + extension:
  // at least an order of magnitude smaller (ISSUE: 100th session setup
  // <= 10% of the 1st — already true by the 2nd).
  EXPECT_LE(s2.setup_bytes * 10, s1.setup_bytes)
      << "resumed setup " << s2.setup_bytes << " vs fresh " << s1.setup_bytes;
  EXPECT_LE(s3.setup_bytes * 10, s1.setup_bytes);

  const ServerStats ss = server.stats();
  EXPECT_EQ(ss.v3_sessions_served, 3u);
  EXPECT_EQ(ss.v3_fresh_pools, 1u);  // one base OT for all three sessions
  // One extension batch covered all three sessions' OT needs.
  EXPECT_EQ(ss.v3_ot_extended, static_cast<std::uint64_t>(ot::kPoolExtendBatch));
  EXPECT_EQ(server.v3_outstanding_claims(), 0u);
  // Client consumed exactly 3 sessions' worth of pool indices.
  EXPECT_EQ(state->pool.watermark(), 3u * rounds * bits);
}

TEST(NetV3, FallsBackToV2AgainstV2OnlyServer) {
  const std::size_t bits = 8, rounds = 12;
  ServerConfig scfg = quiet_server_config(bits, rounds);
  scfg.allow_v3 = false;
  Server server(scfg);
  std::thread serve([&] { server.serve(); });

  // A v3-preferring client against a v2-only server: the rejected v3
  // hello turns into a transparent redial, not an error.
  ClientConfig cfg = quiet_client_config(server.port(), bits);
  cfg.protocol = kProtocolVersionV3;
  const ClientStats cs = run_client(cfg);
  serve.join();

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(cs.output_value, demo_mac_reference(cfg.demo_seed, bits, rounds));
  EXPECT_EQ(cs.protocol_used, kProtocolVersion);
  EXPECT_FALSE(cs.pool_resumed);
  const ServerStats ss = server.stats();
  EXPECT_EQ(ss.handshakes_rejected, 1u);  // the v3 attempt
  EXPECT_EQ(ss.sessions_served, 1u);
  EXPECT_EQ(ss.v3_sessions_served, 0u);
}

// A v2-only server rejects the v3 hello before reading the extension
// frame, then closes — and closing with unread bytes sends a TCP reset
// that can destroy the in-flight reject. One bare close is ambiguous
// with a transient fault (normal retry, staying on v3); a second
// consecutive one must read as a pre-v3 server and turn into the v2
// fallback (regression: the fallback used to require the typed reject
// to survive the reset race).
TEST(NetV3, FallsBackToV2WhenCloseEatsTheVersionReject) {
  const std::size_t bits = 8;
  TcpListener listener(0, "127.0.0.1");
  std::vector<std::uint32_t> hello_versions;
  std::thread serve([&] {
    // Connections 1 and 2: read the hello, send no verdict, close. The
    // deterministic equivalent of the reject being reset away, twice.
    for (int i = 0; i < 2; ++i) {
      auto ch = listener.accept(5'000);
      if (!ch) return;
      hello_versions.push_back(recv_hello(*ch).version);
    }
    // Connection 3: the v2 fallback redial. Answer with a non-retryable
    // reject so the client surfaces it instead of retrying forever.
    {
      auto ch = listener.accept(5'000);
      if (!ch) return;
      hello_versions.push_back(recv_hello(*ch).version);
      send_accept(*ch, ServerAccept{RejectCode::kBitWidthMismatch, 0,
                                    "test reject"});
    }
  });

  ClientConfig cfg = quiet_client_config(listener.port(), bits);
  cfg.protocol = kProtocolVersionV3;
  cfg.retry.max_attempts = 2;  // close #1 burns the retry; #2 falls back
  cfg.retry.backoff_ms = 1;
  cfg.retry.backoff_max_ms = 5;
  try {
    run_client(cfg);
    FAIL() << "expected the v2 redial's HandshakeError to surface";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.code(), RejectCode::kBitWidthMismatch);
  }
  serve.join();

  ASSERT_EQ(hello_versions.size(), 3u);
  EXPECT_EQ(hello_versions[0], kProtocolVersionV3);
  EXPECT_EQ(hello_versions[1], kProtocolVersionV3);  // retry stays on v3
  EXPECT_EQ(hello_versions[2], kProtocolVersion);    // then falls back
}

// With no retry budget (the maxel_client default), there is no second
// strike to wait for: the first bare close during the v3 handshake must
// fall back to v2 within the same attempt instead of surfacing an
// error.
TEST(NetV3, FallsBackToV2OnFirstCloseWhenOutOfRetries) {
  const std::size_t bits = 8;
  TcpListener listener(0, "127.0.0.1");
  std::vector<std::uint32_t> hello_versions;
  std::thread serve([&] {
    {
      auto ch = listener.accept(5'000);
      if (!ch) return;
      hello_versions.push_back(recv_hello(*ch).version);  // close, no verdict
    }
    {
      auto ch = listener.accept(5'000);
      if (!ch) return;
      hello_versions.push_back(recv_hello(*ch).version);
      send_accept(*ch, ServerAccept{RejectCode::kBitWidthMismatch, 0,
                                    "test reject"});
    }
  });

  ClientConfig cfg = quiet_client_config(listener.port(), bits);
  cfg.protocol = kProtocolVersionV3;
  cfg.retry.max_attempts = 1;
  try {
    run_client(cfg);
    FAIL() << "expected the v2 redial's HandshakeError to surface";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.code(), RejectCode::kBitWidthMismatch);
  }
  serve.join();

  ASSERT_EQ(hello_versions.size(), 2u);
  EXPECT_EQ(hello_versions[0], kProtocolVersionV3);
  EXPECT_EQ(hello_versions[1], kProtocolVersion);
}

}  // namespace
}  // namespace maxel::net
