// End-to-end two-party protocol tests: the full garble/transfer/OT/
// evaluate/decode pipeline over counting channels, combinational and
// sequential, under both OT modes and all garbling schemes.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "proto/protocol.hpp"

namespace maxel::proto {
namespace {

using circuit::Builder;
using circuit::Circuit;
using circuit::MacOptions;
using circuit::RoundInputs;
using circuit::to_bits;
using crypto::Block;

TEST(TwoParty, MillionairesBothOtModes) {
  const Circuit c = circuit::make_millionaires_circuit(16);
  for (OtMode ot : {OtMode::kBase, OtMode::kIknp}) {
    ProtocolOptions opt;
    opt.ot = ot;
    TwoPartyProtocol protocol(c, opt);
    const auto run_case = [&](std::uint64_t a, std::uint64_t b) -> bool {
      RoundInputs r{to_bits(a, 16), to_bits(b, 16)};
      // Copy out of the proxy before the temporary result dies.
      return protocol.run({r}).outputs.at(0);
    };
    EXPECT_TRUE(run_case(100, 200));
    EXPECT_FALSE(run_case(200, 100));
    EXPECT_FALSE(run_case(150, 150));
  }
}

TEST(TwoParty, EverySchemeComputesDotProduct) {
  const MacOptions mac{8, 16, true};
  const Circuit c = circuit::make_dot_product_circuit(4, mac);
  crypto::Prg prg(Block{500, 0});

  for (gc::Scheme s : {gc::Scheme::kClassic4, gc::Scheme::kGrr3,
                       gc::Scheme::kHalfGates}) {
    std::vector<std::uint64_t> a(4), x(4);
    RoundInputs r;
    for (std::size_t i = 0; i < 4; ++i) {
      a[i] = prg.next_u64() & 0xFF;
      x[i] = prg.next_u64() & 0xFF;
      const auto ab = to_bits(a[i], 8);
      const auto xb = to_bits(x[i], 8);
      r.garbler_bits.insert(r.garbler_bits.end(), ab.begin(), ab.end());
      r.evaluator_bits.insert(r.evaluator_bits.end(), xb.begin(), xb.end());
    }
    ProtocolOptions opt;
    opt.scheme = s;
    TwoPartyProtocol protocol(c, opt);
    const auto res = protocol.run({r});
    EXPECT_EQ(circuit::from_bits(res.outputs),
              circuit::dot_reference(a, x, mac))
        << gc::scheme_name(s);
  }
}

TEST(TwoParty, SequentialMacOverManyRounds) {
  const MacOptions mac{8, 8, true};
  const Circuit c = circuit::make_mac_circuit(mac);
  crypto::Prg prg(Block{501, 0});

  std::vector<RoundInputs> rounds(24);
  std::uint64_t expect = 0;
  for (auto& r : rounds) {
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    r.garbler_bits = to_bits(a, 8);
    r.evaluator_bits = to_bits(x, 8);
    expect = circuit::mac_reference(expect, a, x, mac);
  }

  TwoPartyProtocol protocol(c);
  const auto res = protocol.run(rounds);
  EXPECT_EQ(circuit::from_bits(res.outputs), expect);
  EXPECT_EQ(res.rounds, 24u);
  EXPECT_EQ(res.ands_garbled, c.and_count() * 24);
}

TEST(TwoParty, TrafficScalesWithSchemeRows) {
  // Garbled-table traffic must shrink 4 -> 3 -> 2 rows across schemes.
  const MacOptions mac{8, 8, true};
  const Circuit c = circuit::make_dot_product_circuit(2, mac);
  RoundInputs r{to_bits(0x1234, 16), to_bits(0x5678, 16)};

  std::uint64_t bytes[3] = {};
  const gc::Scheme schemes[] = {gc::Scheme::kClassic4, gc::Scheme::kGrr3,
                                gc::Scheme::kHalfGates};
  for (int i = 0; i < 3; ++i) {
    ProtocolOptions opt;
    opt.scheme = schemes[i];
    TwoPartyProtocol protocol(c, opt);
    bytes[i] = protocol.run({r}).garbler_bytes_sent;
  }
  EXPECT_GT(bytes[0], bytes[1]);
  EXPECT_GT(bytes[1], bytes[2]);
  // Ratio of table payloads is exactly 4:3:2; total garbler traffic is
  // table-dominated for this circuit, so the ordering must be strict and
  // the classic/halfgates gap large.
  EXPECT_GT(bytes[0] - bytes[2], (bytes[0] - bytes[1]));
}

TEST(TwoParty, InputArityValidated) {
  const Circuit c = circuit::make_millionaires_circuit(8);
  TwoPartyProtocol protocol(c);
  RoundInputs bad{to_bits(1, 4), to_bits(2, 8)};  // garbler too short
  EXPECT_THROW((void)protocol.run({bad}), std::invalid_argument);
}

TEST(TwoParty, GarblerOnlyCircuit) {
  // Circuits with no evaluator inputs still need OT machinery to no-op.
  Builder b;
  const auto a = b.garbler_inputs(8);
  b.set_outputs(b.add(a, b.constant_bus(17, 8)));
  const Circuit c = b.take();
  TwoPartyProtocol protocol(c);
  RoundInputs r{to_bits(25, 8), {}};
  EXPECT_EQ(circuit::from_bits(protocol.run({r}).outputs), 42u);
}

TEST(TwoParty, MixedPartyXor) {
  // Output depends on both parties through free gates only.
  Builder b;
  const auto a = b.garbler_inputs(8);
  const auto x = b.evaluator_inputs(8);
  b.set_outputs(b.xor_bus(a, x));
  const Circuit c = b.take();
  TwoPartyProtocol protocol(c);
  RoundInputs r{to_bits(0xA5, 8), to_bits(0x3C, 8)};
  EXPECT_EQ(circuit::from_bits(protocol.run({r}).outputs), 0xA5u ^ 0x3Cu);
}

}  // namespace
}  // namespace maxel::proto
