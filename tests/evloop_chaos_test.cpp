// Chaos tier for the event-loop serving path: the close/stall/trunc
// FaultPlan matrix from chaos_test.cpp replayed against a live sharded
// EvBroker, in all four session modes. The contract is the blocking
// tier's: every scenario ends within a watchdog in either a bit-correct
// verified MAC or a typed NetError — never a hang — the broker keeps
// serving clean clients afterwards, and no scenario leaves an OT-pool
// claim outstanding (the zero-stuck-claims gate).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "crypto/rng.hpp"
#include "evloop/ev_broker.hpp"
#include "net/client.hpp"
#include "net/demo_inputs.hpp"
#include "net/error.hpp"
#include "net/v3_service.hpp"

namespace maxel::evloop {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBits = 8;
constexpr std::size_t kRounds = 12;
constexpr double kWatchdogSeconds = 25.0;

// The close/stall/trunc plans from the blocking matrix (client-side
// injection; indices are raw-op counts, so each schedule reproduces
// bit-for-bit from the string alone).
const char* const kPlans[] = {
    "close@send:0",             // hello dies
    "close@send:2",             // OT setup dies on our side
    "close@recv:1",             // handshake reply dies
    "close@recv:6",             // session material dies
    "trunc@send:1",             // peer sees a mid-message EOF
    "trunc@send:3",
    "seed=11;stall@recv:1:300"  // a short stall inside the idle deadline
};

struct Outcome {
  bool verified = false;
  bool threw = false;
  std::string error;
  std::uint32_t attempts = 0;
  std::uint64_t output = 0;
  double elapsed = 0;
};

Outcome run_chaos_client(const net::ClientConfig& cfg) {
  Outcome out;
  const auto t0 = Clock::now();
  try {
    const net::ClientStats cs = net::run_client(cfg);
    out.verified = cs.verified;
    out.attempts = cs.attempts;
    out.output = cs.output_value;
  } catch (const net::NetError& e) {
    out.threw = true;
    out.error = e.what();
  }
  out.elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

void check_outcome(const Outcome& out, std::uint64_t expected_mac) {
  EXPECT_LT(out.elapsed, kWatchdogSeconds);
  if (out.threw) {
    EXPECT_FALSE(out.error.empty());
  } else {
    EXPECT_TRUE(out.verified) << "completed without verifying";
    EXPECT_EQ(out.output, expected_mac);
  }
}

class EvBrokerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spool_dir_ = fs::temp_directory_path() /
                 ("maxel_evchaos_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()) +
                  "_" + ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
    fs::remove_all(spool_dir_);
  }
  void TearDown() override { fs::remove_all(spool_dir_); }

  EvBrokerConfig chaos_config() {
    EvBrokerConfig cfg;
    cfg.bind_addr = "127.0.0.1";
    cfg.port = 0;
    cfg.bits = kBits;
    cfg.rounds_per_session = kRounds;
    cfg.spool_dir = spool_dir_.string();
    cfg.shards = 2;
    cfg.spool_low_watermark = 1;
    cfg.spool_high_watermark = 4;
    cfg.verbose = false;
    cfg.idle_timeout_ms = 5'000;  // bounds stalled/half-dead peers
    return cfg;
  }

  net::ClientConfig chaos_client(std::uint16_t port, const std::string& plan) {
    net::ClientConfig cfg;
    cfg.port = port;
    cfg.bits = kBits;
    cfg.verbose = false;
    cfg.fault_plan = plan;
    cfg.retry.max_attempts = 4;
    cfg.retry.backoff_ms = 10;
    cfg.retry.backoff_max_ms = 50;
    cfg.tcp.recv_timeout_ms = 2'000;
    cfg.tcp.send_timeout_ms = 2'000;
    cfg.tcp.connect_attempts = 3;
    cfg.tcp.connect_backoff_ms = 20;
    return cfg;
  }

  // One broker per mode; every plan runs against it in sequence, with a
  // clean-client probe after each scenario that died typed.
  void run_matrix(net::SessionMode mode, std::uint32_t protocol) {
    const std::uint64_t expected =
        net::demo_mac_reference(7, kBits, kRounds);
    EvBrokerConfig cfg = chaos_config();
    EvBroker broker(cfg);
    std::thread run([&] { broker.run(); });
    int recovered = 0;

    crypto::SystemRandom id_rng;
    for (const char* plan : kPlans) {
      SCOPED_TRACE(std::string("plan=") + plan);
      net::ClientConfig ccfg = chaos_client(broker.port(), plan);
      ccfg.mode = mode;
      ccfg.protocol = protocol;
      if (protocol == net::kProtocolVersionV3 ||
          mode == net::SessionMode::kReusable)
        ccfg.v3_state = net::make_v3_client_state(id_rng);
      const Outcome out = run_chaos_client(ccfg);
      check_outcome(out, expected);
      if (out.verified && out.attempts >= 2) ++recovered;

      if (out.threw) {
        net::ClientConfig clean = chaos_client(broker.port(), "");
        clean.mode = mode;
        clean.protocol = protocol;
        if (protocol == net::kProtocolVersionV3 ||
            mode == net::SessionMode::kReusable)
          clean.v3_state = net::make_v3_client_state(id_rng);
        const Outcome ok = run_chaos_client(clean);
        EXPECT_TRUE(ok.verified) << ok.error;
      }
    }
    broker.request_stop();
    run.join();
    // Checked after the loops are fully down: every claim must have
    // ended in consume or discard, whatever the fault schedule did.
    EXPECT_EQ(broker.v3_outstanding_claims(), 0u);
    EXPECT_EQ(static_cast<std::int64_t>(broker.stats().server.sessions_served),
              broker.metrics().counter("sessions_served").value());
    // Transient faults must actually be recovering through retry.
    EXPECT_GE(recovered, 3);
  }

  fs::path spool_dir_;
};

TEST_F(EvBrokerChaosTest, PrecomputedSurvivesEveryPlan) {
  run_matrix(net::SessionMode::kPrecomputed, net::kProtocolVersion);
}

TEST_F(EvBrokerChaosTest, StreamSurvivesEveryPlan) {
  run_matrix(net::SessionMode::kStream, net::kProtocolVersion);
}

TEST_F(EvBrokerChaosTest, V3SurvivesEveryPlanWithNoStuckClaims) {
  run_matrix(net::SessionMode::kPrecomputed, net::kProtocolVersionV3);
}

TEST_F(EvBrokerChaosTest, ReusableSurvivesEveryPlanWithNoStuckClaims) {
  run_matrix(net::SessionMode::kReusable, net::kProtocolVersionV3);
}

}  // namespace
}  // namespace maxel::evloop
