// Matrix-multiplication orchestration: the Sec. 4.3 performance formula
// (1 product per 3*M*N*P*b cycles), multi-unit/PCIe interplay, and the
// full simulator-backed secure matrix product verified element by
// element through the standard evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuits.hpp"
#include "core/matmul.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"

namespace maxel::core {
namespace {

TEST(MatMulPlan, PaperFormula) {
  MatMulPlan plan;
  plan.rows = 10;    // N
  plan.inner = 20;   // M
  plan.cols = 5;     // P
  plan.bit_width = 32;
  EXPECT_DOUBLE_EQ(plan.total_macs(), 1000.0);
  // 1 product per 3*M*N*P*b cycles (Sec. 4.3).
  EXPECT_DOUBLE_EQ(plan.total_cycles_per_unit(), 3.0 * 1000.0 * 32.0);
  EXPECT_DOUBLE_EQ(plan.garble_seconds(), 3.0 * 1000.0 * 32.0 / 200e6);
}

TEST(MatMulPlan, UnitsScaleGarblingLinearly) {
  MatMulPlan one;
  one.rows = one.inner = one.cols = 32;
  MatMulPlan four = one;
  four.units = 4;
  EXPECT_DOUBLE_EQ(one.garble_seconds(), 4.0 * four.garble_seconds());
  // Table traffic is workload-determined, not unit-determined.
  EXPECT_DOUBLE_EQ(one.table_bytes(), four.table_bytes());
}

TEST(MatMulPlan, SaturationUnitsMatchesCeilContract) {
  // pcie_saturation_units is defined as ceil(one_unit_garble / pcie)
  // clamped to >= 1 (regression: a hand-rolled `u + 0.999999` ceil used
  // to under-round values just past an integer). Check against
  // std::ceil computed from the same public quantities.
  for (const double clock : {100.0, 200.0, 333.33, 517.0}) {
    for (const std::size_t dim : {16u, 64u, 128u}) {
      MatMulPlan plan;
      plan.rows = plan.inner = plan.cols = dim;
      plan.bit_width = 32;
      plan.clock_mhz = clock;
      const double one_unit = plan.total_cycles_per_unit() / (clock * 1e6);
      const double u = one_unit / plan.pcie_seconds();
      const std::size_t expect =
          u < 1.0 ? 1 : static_cast<std::size_t>(std::ceil(u));
      EXPECT_EQ(plan.pcie_saturation_units(), expect)
          << "clock=" << clock << " dim=" << dim;
    }
  }
}

TEST(MatMulPlan, SaturationUnitsExactAndJustPastExactDivision) {
  MatMulPlan plan;
  plan.rows = plan.inner = plan.cols = 64;
  plan.bit_width = 32;
  const double p = plan.pcie_seconds();
  ASSERT_GT(p, 0.0);
  const double cycles = plan.total_cycles_per_unit();

  // Back-solve the clock so one unit needs exactly 4 link-times...
  plan.clock_mhz = cycles / (4.0 * p) / 1e6;
  const double u_exact = (cycles / (plan.clock_mhz * 1e6)) / p;
  EXPECT_EQ(plan.pcie_saturation_units(),
            static_cast<std::size_t>(std::ceil(u_exact)));
  EXPECT_LE(plan.pcie_saturation_units(), 5u);
  EXPECT_GE(plan.pcie_saturation_units(), 4u);

  // ...and just past it: a hair over 4 must round UP to 5 even though
  // the overshoot is far below the old 0.999999 fudge threshold.
  plan.clock_mhz = cycles / (4.0 * p) / 1e6 / (1.0 + 1e-9);
  const double u_past = (cycles / (plan.clock_mhz * 1e6)) / p;
  ASSERT_GT(u_past, 4.0);
  EXPECT_EQ(plan.pcie_saturation_units(), 5u);

  // Garbling faster than the link from one unit on: clamps to 1.
  plan.clock_mhz = cycles / (0.25 * p) / 1e6;
  EXPECT_EQ(plan.pcie_saturation_units(), 1u);
}

TEST(MatMulPlan, PcieEventuallyBinds) {
  MatMulPlan plan;
  plan.rows = plan.inner = plan.cols = 64;
  plan.bit_width = 32;
  const std::size_t sat = plan.pcie_saturation_units();
  EXPECT_GE(sat, 1u);
  EXPECT_LT(sat, 200u);

  MatMulPlan at_sat = plan;
  at_sat.units = sat;
  // At saturation the effective time is link-dominated...
  EXPECT_NEAR(at_sat.effective_seconds(), at_sat.pcie_seconds(),
              0.05 * at_sat.pcie_seconds());
  // ...and adding units no longer helps.
  MatMulPlan beyond = plan;
  beyond.units = sat * 4;
  EXPECT_NEAR(beyond.effective_seconds(), at_sat.effective_seconds(),
              0.05 * at_sat.effective_seconds());
}

TEST(MatMulPlan, TableBytesMatchSimulator) {
  MatMulPlan plan;
  plan.rows = 1;
  plan.inner = 6;
  plan.cols = 1;
  plan.bit_width = 8;
  MaxeleratorConfig cfg;
  cfg.bit_width = 8;
  crypto::SystemRandom rng(crypto::Block{5, 6});
  MaxeleratorSim sim(cfg, rng);
  sim.run(6);
  EXPECT_DOUBLE_EQ(plan.table_bytes(),
                   static_cast<double>(sim.stats().table_bytes));
}

TEST(SecureMatMul, SimulatorProductMatchesReference) {
  const std::size_t b = 8;
  const std::size_t n = 2, m = 3, p = 2;
  crypto::Prg prg(crypto::Block{7, 7});
  std::vector<std::vector<std::uint64_t>> a(n, std::vector<std::uint64_t>(m));
  std::vector<std::vector<std::uint64_t>> x(m, std::vector<std::uint64_t>(p));
  for (auto& row : a)
    for (auto& v : row) v = prg.next_u64() & 0xFF;
  for (auto& row : x)
    for (auto& v : row) v = prg.next_u64() & 0xFF;

  crypto::SystemRandom rng(crypto::Block{8, 8});
  const SecureMatMulResult res = secure_matmul_on_sim(a, x, b, rng);
  ASSERT_TRUE(res.verified);

  const circuit::MacOptions ref{b, b, true};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      std::uint64_t expect = 0;
      for (std::size_t l = 0; l < m; ++l)
        expect = circuit::mac_reference(expect, a[i][l], x[l][j], ref);
      EXPECT_EQ(res.product[i][j], expect) << i << "," << j;
    }
  }
  EXPECT_EQ(res.tables, n * p * m * (2 * b + 8) * b);
}

TEST(SecureMatMul, ShapeValidation) {
  crypto::SystemRandom rng(crypto::Block{9, 9});
  std::vector<std::vector<std::uint64_t>> a = {{1, 2}};
  std::vector<std::vector<std::uint64_t>> bad = {{1}};  // inner mismatch
  EXPECT_THROW((void)secure_matmul_on_sim(a, bad, 8, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace maxel::core
