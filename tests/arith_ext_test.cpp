// Division and integer-square-root netlists: exhaustive sweeps at small
// widths (including division by zero), randomized checks at full width,
// garbled execution under every scheme, and the gate-count facts the
// Table 3 cost model cross-checks against.
#include <gtest/gtest.h>

#include "circuit/arith_ext.hpp"
#include "circuit/circuits.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"

namespace maxel::circuit {
namespace {

using crypto::Prg;

class DividerWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DividerWidth, MatchesReferenceExhaustivelyOrRandomly) {
  const std::size_t w = GetParam();
  const Circuit c = make_divider_circuit(w);
  ASSERT_EQ(c.outputs.size(), 2 * w);

  const auto run = [&](std::uint64_t a, std::uint64_t d) {
    const auto out = eval_plain(c, to_bits(a, w), to_bits(d, w));
    const std::vector<bool> q(out.begin(), out.begin() + static_cast<long>(w));
    const std::vector<bool> r(out.begin() + static_cast<long>(w), out.end());
    return DivModResult{from_bits(q), from_bits(r)};
  };

  const std::uint64_t m = w >= 64 ? ~0ull : ((1ull << w) - 1);
  if (w <= 5) {
    for (std::uint64_t a = 0; a <= m; ++a) {
      for (std::uint64_t d = 0; d <= m; ++d) {
        const auto got = run(a, d);
        const auto expect = divmod_reference(a, d, w);
        ASSERT_EQ(got.quotient, expect.quotient) << "a=" << a << " d=" << d;
        ASSERT_EQ(got.remainder, expect.remainder) << "a=" << a << " d=" << d;
      }
    }
  } else {
    Prg prg(crypto::Block{w, 0xD1});
    for (int t = 0; t < 150; ++t) {
      const std::uint64_t a = prg.next_u64() & m;
      const std::uint64_t d =
          t % 7 == 0 ? 0 : (prg.next_u64() & m);  // hit the d=0 path too
      const auto got = run(a, d);
      const auto expect = divmod_reference(a, d, w);
      ASSERT_EQ(got.quotient, expect.quotient) << "a=" << a << " d=" << d;
      ASSERT_EQ(got.remainder, expect.remainder) << "a=" << a << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DividerWidth,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 32));

class SqrtWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SqrtWidth, MatchesFloorSqrt) {
  const std::size_t w = GetParam();
  const Circuit c = make_sqrt_circuit(w);
  ASSERT_EQ(c.outputs.size(), (w + 1) / 2);

  const auto run = [&](std::uint64_t a) {
    return from_bits(eval_plain(c, to_bits(a, w), {}));
  };
  const std::uint64_t m = w >= 64 ? ~0ull : ((1ull << w) - 1);
  if (w <= 10) {
    for (std::uint64_t a = 0; a <= m; ++a)
      ASSERT_EQ(run(a), sqrt_reference(a)) << "a=" << a;
  } else {
    Prg prg(crypto::Block{w, 0x51});
    for (int t = 0; t < 200; ++t) {
      const std::uint64_t a = prg.next_u64() & m;
      ASSERT_EQ(run(a), sqrt_reference(a)) << "a=" << a;
    }
    // Perfect squares are the boundary cases of the compare chain.
    for (std::uint64_t s = 0; s * s <= m; s += 3)
      ASSERT_EQ(run(s * s), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SqrtWidth,
                         ::testing::Values(2, 4, 6, 8, 10, 16, 32));

TEST(SqrtReference, KnownValues) {
  EXPECT_EQ(sqrt_reference(0), 0u);
  EXPECT_EQ(sqrt_reference(1), 1u);
  EXPECT_EQ(sqrt_reference(2), 1u);
  EXPECT_EQ(sqrt_reference(15), 3u);
  EXPECT_EQ(sqrt_reference(16), 4u);
  EXPECT_EQ(sqrt_reference(1ull << 40), 1ull << 20);
}

TEST(ArithExt, GarbledDivisionAllSchemes) {
  const Circuit c = make_divider_circuit(8);
  crypto::SystemRandom rng(crypto::Block{0xD1, 0xD2});
  Prg prg(crypto::Block{3, 14});
  for (const gc::Scheme s : {gc::Scheme::kClassic4, gc::Scheme::kGrr3,
                             gc::Scheme::kHalfGates}) {
    for (int t = 0; t < 10; ++t) {
      const std::uint64_t a = prg.next_u64() & 0xFF;
      const std::uint64_t d = t == 0 ? 0 : (prg.next_u64() & 0xFF);
      const auto got = gc::garble_and_evaluate(c, s, to_bits(a, 8),
                                               to_bits(d, 8), rng);
      EXPECT_EQ(got, eval_plain(c, to_bits(a, 8), to_bits(d, 8)));
    }
  }
}

TEST(ArithExt, GarbledSqrt) {
  const Circuit c = make_sqrt_circuit(12);
  crypto::SystemRandom rng(crypto::Block{0x53, 0x54});
  Prg prg(crypto::Block{1, 61});
  for (int t = 0; t < 15; ++t) {
    const std::uint64_t a = prg.next_u64() & 0xFFF;
    const auto got = gc::garble_and_evaluate(c, gc::Scheme::kHalfGates,
                                             to_bits(a, 12), {}, rng);
    EXPECT_EQ(from_bits(got), sqrt_reference(a));
  }
}

TEST(ArithExt, GateCountsScaleQuadratically) {
  // ~2 ANDs per bit per iteration => ~2b^2 for division, ~b^2-ish for
  // sqrt. The Table 3 model sanity check depends on these magnitudes.
  const auto div_ands = [](std::size_t w) {
    return make_divider_circuit(w).and_count();
  };
  const auto sqrt_ands = [](std::size_t w) {
    return make_sqrt_circuit(w).and_count();
  };
  EXPECT_GT(div_ands(32), 3.0 * div_ands(16));
  EXPECT_LT(div_ands(32), 5.0 * div_ands(16));
  EXPECT_GT(sqrt_ands(32), 3.0 * sqrt_ands(16));
  EXPECT_LT(sqrt_ands(32), 5.0 * sqrt_ands(16));
  // Division at b=32 costs the same order as (but more than) a serial
  // multiplier — consistent with the fitted t_div/t_mac ratio of ~0.7
  // once [7]'s implementation details wash out.
  const MacOptions mul{32, 32, false, Builder::MulStructure::kSerial};
  const std::size_t mul_ands = make_multiplier_circuit(mul).and_count();
  EXPECT_GT(div_ands(32), mul_ands);
  EXPECT_LT(div_ands(32), 5 * mul_ands);
}

TEST(ArithExt, CondSubtractUnit) {
  Builder bld;
  const Bus a = bld.garbler_inputs(6);
  const Bus b = bld.evaluator_inputs(6);
  Wire did = Builder::const0();
  const Bus out = cond_subtract(bld, a, b, &did);
  bld.set_outputs(out);
  bld.append_outputs({did});
  const Circuit c = bld.take();
  for (std::uint64_t x = 0; x < 64; x += 5) {
    for (std::uint64_t y = 0; y < 64; y += 3) {
      const auto o = eval_plain(c, to_bits(x, 6), to_bits(y, 6));
      const std::uint64_t v = from_bits({o.begin(), o.begin() + 6});
      const bool sub = o[6];
      EXPECT_EQ(sub, x >= y);
      EXPECT_EQ(v, x >= y ? x - y : x);
    }
  }
}

TEST(ArithExt, RejectsBadWidths) {
  EXPECT_THROW((void)make_divider_circuit(0), std::invalid_argument);
  EXPECT_THROW((void)make_divider_circuit(40), std::invalid_argument);
  EXPECT_THROW((void)make_sqrt_circuit(1), std::invalid_argument);
}

}  // namespace
}  // namespace maxel::circuit
