// SessionSpool invariants: atomic claim-rename single-use (the property
// that makes restarting a broker safe), kill/restart reconciliation,
// checksummed index self-healing, bit-rot detection, and the RAM cache
// fronting the disk. Plus MetricsRegistry unit coverage.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <string>

#include "circuit/circuits.hpp"
#include "crypto/rng.hpp"
#include "gc/v3.hpp"
#include "net/reusable_service.hpp"
#include "proto/precompute.hpp"
#include "proto/reusable_io.hpp"
#include "proto/session_io.hpp"
#include "proto/v3_session.hpp"
#include "svc/metrics.hpp"
#include "svc/session_spool.hpp"

namespace maxel::svc {
namespace {

namespace fs = std::filesystem;
using crypto::Block;

class SpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("maxel_spool_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  proto::PrecomputedSession make_session(std::uint64_t seed) {
    const circuit::Circuit c =
        circuit::make_mac_circuit(circuit::MacOptions{8, 8, true});
    crypto::SystemRandom rng(Block{seed, 0x5});
    return proto::garble_session(c, gc::Scheme::kHalfGates, 2, rng);
  }

  proto::PrecomputedSessionV3 make_v3_session(std::uint64_t seed,
                                              crypto::Block delta) {
    delta.lo |= 1;  // pool correlation secret: lsb is the permute bit
    const circuit::Circuit c =
        circuit::make_mac_circuit(circuit::MacOptions{8, 8, true});
    const gc::V3Analysis an = gc::analyze_v3(c);
    crypto::SystemRandom rng(Block{seed, 0x7});
    const std::vector<std::vector<bool>> g_bits(2, std::vector<bool>(8));
    return proto::garble_session_v3(c, an, g_bits, delta, rng.next_block(),
                                    rng);
  }

  SpoolConfig config(std::size_t cache = 0) {
    return SpoolConfig{dir_.string(), cache, true};
  }

  fs::path dir_;
};

TEST_F(SpoolTest, PutTakeRoundTripsSessions) {
  SessionSpool spool(config());
  const proto::PrecomputedSession s = make_session(1);
  const auto want = proto::serialize_session(s);
  spool.put(make_session(1));
  EXPECT_EQ(spool.ready(), 1u);

  const auto got = spool.take();
  ASSERT_TRUE(got.has_value());
  // Byte-identical round trip through disk (same seed -> same session).
  EXPECT_EQ(proto::serialize_session(*got), want);
  EXPECT_EQ(spool.ready(), 0u);
  EXPECT_FALSE(spool.take().has_value());
}

TEST_F(SpoolTest, TakeClaimsOldestFirstAndNeverTwice) {
  SessionSpool spool(config());
  for (std::uint64_t i = 0; i < 4; ++i) spool.put(make_session(i));

  std::set<std::string> served;
  for (int i = 0; i < 4; ++i) {
    const auto s = spool.take();
    ASSERT_TRUE(s.has_value());
    // Distinct deltas witness distinct sessions: no double-serve.
    char key[64];
    std::snprintf(key, sizeof(key), "%016llx%016llx",
                  static_cast<unsigned long long>(s->delta.hi),
                  static_cast<unsigned long long>(s->delta.lo));
    EXPECT_TRUE(served.insert(key).second) << "session served twice";
  }
  EXPECT_FALSE(spool.take().has_value());
  EXPECT_EQ(spool.stats().sessions_claimed, 4u);
}

TEST_F(SpoolTest, SurvivesRestartWithoutReuse) {
  // First life: spool 3, serve 1 — then "crash" (drop the object).
  {
    SessionSpool spool(config());
    for (std::uint64_t i = 0; i < 3; ++i) spool.put(make_session(10 + i));
    ASSERT_TRUE(spool.take().has_value());
  }
  // The claim rename happened before the session bytes were handed out,
  // so a restart finds 2 ready files; the served one is gone for good.
  SessionSpool reopened(config());
  EXPECT_EQ(reopened.ready(), 2u);
  EXPECT_TRUE(reopened.take().has_value());
  EXPECT_TRUE(reopened.take().has_value());
  EXPECT_FALSE(reopened.take().has_value());
}

TEST_F(SpoolTest, PurgesClaimedLeftoversOnOpen) {
  {
    SessionSpool spool(config());
    spool.put(make_session(42));
  }
  // Simulate a crash mid-serve: the claim rename happened but the
  // process died before the unlink.
  fs::rename(dir_ / "ready" / "sess-000000000000.mxs",
             dir_ / "claimed" / "sess-000000000000.mxs");

  SessionSpool reopened(config());
  // The half-served session's labels are burned; it must never be
  // re-offered.
  EXPECT_EQ(reopened.ready(), 0u);
  EXPECT_GE(reopened.stats().purged_on_open, 1u);
  EXPECT_FALSE(fs::exists(dir_ / "claimed" / "sess-000000000000.mxs"));
}

TEST_F(SpoolTest, RebuildsIndexWhenMissingOrCorrupt) {
  {
    SessionSpool spool(config());
    spool.put(make_session(7));
    spool.put(make_session(8));
  }
  // Index deleted: rebuilt by scanning ready/.
  fs::remove(dir_ / "spool.idx");
  {
    SessionSpool spool(config());
    EXPECT_EQ(spool.ready(), 2u);
    EXPECT_TRUE(spool.take().has_value());
  }
  // Index corrupted (checksum line mangled): also rebuilt.
  {
    std::ofstream os(dir_ / "spool.idx", std::ios::app);
    os << "garbage\n";
  }
  SessionSpool spool(config());
  EXPECT_EQ(spool.ready(), 1u);
  EXPECT_TRUE(spool.take().has_value());
}

TEST_F(SpoolTest, DetectsBitRotViaChecksum) {
  SessionSpool spool(config());
  spool.put(make_session(3));
  // Flip one byte in the middle of the stored session file.
  const fs::path f = dir_ / "ready" / "sess-000000000000.mxs";
  std::fstream io(f, std::ios::in | std::ios::out | std::ios::binary);
  io.seekp(200);
  char b;
  io.seekg(200);
  io.get(b);
  b = static_cast<char>(b ^ 0x40);
  io.seekp(200);
  io.put(b);
  io.close();

  EXPECT_THROW((void)spool.take(), std::runtime_error);
}

TEST_F(SpoolTest, RamCacheServesWithoutDiskRead) {
  SessionSpool spool(config(/*cache=*/2));
  spool.put(make_session(1));
  spool.put(make_session(2));
  spool.put(make_session(3));  // beyond the cache: disk only

  ASSERT_TRUE(spool.take().has_value());  // cached
  ASSERT_TRUE(spool.take().has_value());  // cached
  ASSERT_TRUE(spool.take().has_value());  // disk read-back
  const SpoolStats st = spool.stats();
  EXPECT_EQ(st.cache_hits, 2u);
  EXPECT_EQ(st.cache_misses, 1u);
  // Cache hits still burn the disk copy: nothing left to serve.
  EXPECT_FALSE(spool.take().has_value());
}

// ---------------------------------------------------------------------------
// Protocol-v3 lane

TEST_F(SpoolTest, V3LaneRoundTripsAndStaysSeparate) {
  SessionSpool spool(config(/*cache=*/2));
  const Block delta{0xD317A, 0xBEEF};
  const proto::PrecomputedSessionV3 s = make_v3_session(1, delta);
  const auto want = proto::serialize_session_v3(s);
  spool.put_v3(s);
  spool.put(make_session(1));

  EXPECT_EQ(spool.ready(), 1u);     // v2 count excludes the v3 lane
  EXPECT_EQ(spool.ready_v3(), 1u);

  // take() must never surface a v3 session, and vice versa.
  const auto v2 = spool.take();
  ASSERT_TRUE(v2.has_value());
  EXPECT_FALSE(spool.take().has_value());

  const auto got = spool.take_v3(s.pool_lineage);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(proto::serialize_session_v3(*got), want);  // disk round trip
  EXPECT_FALSE(spool.take_v3(s.pool_lineage).has_value());

  const SpoolStats st = spool.stats();
  EXPECT_EQ(st.v3_spooled, 1u);
  EXPECT_EQ(st.v3_claimed, 1u);
  EXPECT_EQ(st.v3_lineage_discarded, 0u);
}

TEST_F(SpoolTest, V3LaneSurvivesRestartAndBurnsForeignLineage) {
  const Block delta{0x11, 0x22};
  std::uint64_t lineage = 0;
  {
    SessionSpool spool(config());
    for (std::uint64_t i = 0; i < 3; ++i) {
      const auto s = make_v3_session(20 + i, delta);
      lineage = s.pool_lineage;
      spool.put_v3(s);
    }
  }
  // Same lineage after restart: the inherited stock serves normally
  // (the index's lineage column survived the round trip).
  {
    SessionSpool spool(config());
    EXPECT_EQ(spool.ready_v3(), 3u);
    ASSERT_TRUE(spool.take_v3(lineage).has_value());
  }
  // Foreign lineage (a new broker's delta): every inherited session is
  // burned — claimed and destroyed, never returned.
  SessionSpool spool(config());
  EXPECT_EQ(spool.ready_v3(), 2u);
  EXPECT_FALSE(spool.take_v3(lineage + 1).has_value());
  EXPECT_EQ(spool.stats().v3_lineage_discarded, 2u);
  EXPECT_EQ(spool.ready_v3(), 0u);
  // And the burn is durable: nothing reappears on the next open.
  SessionSpool reopened(config());
  EXPECT_EQ(reopened.ready_v3(), 0u);
}

// ---------------------------------------------------------------------------
// Reusable lane: keyed garble-once artifacts, fetched without claiming.

TEST_F(SpoolTest, ReusableLaneFetchesWithoutClaimingAndStaysSeparate) {
  SessionSpool spool(config());
  spool.put(make_session(1));
  const auto s3 = make_v3_session(2, Block{0x1, 0x3});
  spool.put_v3(s3);
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  spool.put_reusable("abcd-8", blob);

  // Fetch is idempotent: the artifact never moves to claimed/ and both
  // single-use lanes are blind to it.
  EXPECT_EQ(spool.fetch_reusable("abcd-8"), blob);
  EXPECT_EQ(spool.fetch_reusable("abcd-8"), blob);
  EXPECT_FALSE(spool.fetch_reusable("other-key").has_value());
  ASSERT_TRUE(spool.take().has_value());
  EXPECT_FALSE(spool.take().has_value());
  ASSERT_TRUE(spool.take_v3(s3.pool_lineage).has_value());
  EXPECT_FALSE(spool.take_v3(s3.pool_lineage).has_value());
  EXPECT_EQ(spool.stats().reusable_ready, 1u);
  EXPECT_EQ(spool.stats().reusable_spooled, 1u);
}

TEST_F(SpoolTest, ReusableEvaluationCounterPersistsAcrossRestart) {
  const circuit::Circuit c =
      circuit::make_mac_circuit(circuit::MacOptions{8, 8, true});
  crypto::SystemRandom rng(Block{0x77, 0x9});
  const gc::ReusableCircuit rc = net::garble_reusable(c, 8, rng);
  const std::string key = reusable_artifact_key(rc.view.fingerprint, 8);
  {
    SessionSpool spool(config());
    spool.put_reusable(key, proto::serialize_reusable(rc));
    spool.add_reusable_evaluations(key, 100);
    spool.add_reusable_evaluations(key, 28);
  }
  {
    SessionSpool spool(config());
    const auto entries = spool.reusable_entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].key, key);
    EXPECT_EQ(entries[0].evaluations, 128u);
    EXPECT_EQ(spool.stats().reusable_evaluations, 128u);
  }
  // Losing the index costs the counter but not the artifact: the key is
  // recovered by parsing the blob itself.
  fs::remove(dir_ / "spool.idx");
  SessionSpool rebuilt(config());
  const auto entries = rebuilt.reusable_entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, key);
  EXPECT_EQ(entries[0].evaluations, 0u);
  ASSERT_TRUE(rebuilt.fetch_reusable(key).has_value());
}

TEST_F(SpoolTest, ReusableFetchDestroysBitRottedArtifact) {
  SessionSpool spool(config());
  spool.put_reusable("feed-16", std::vector<std::uint8_t>(64, 0xAB));
  for (const auto& e : fs::directory_iterator(dir_ / "ready")) {
    std::ofstream os(e.path(), std::ios::binary | std::ios::trunc);
    os << "tampered";
  }
  EXPECT_FALSE(spool.fetch_reusable("feed-16").has_value());
  EXPECT_EQ(spool.stats().reusable_corrupt_discarded, 1u);
  EXPECT_EQ(spool.stats().reusable_ready, 0u);
  // The discard is durable: nothing resurfaces on the next open.
  spool.put(make_session(9));  // keep the dir non-trivial
  SessionSpool reopened(config());
  EXPECT_FALSE(reopened.fetch_reusable("feed-16").has_value());
}

TEST_F(SpoolTest, ReusablePutReplacesPerKeyAndPurgeRetires) {
  SessionSpool spool(config());
  spool.put_reusable("k-8", std::vector<std::uint8_t>(32, 0x01));
  spool.add_reusable_evaluations("k-8", 50);
  spool.put_reusable("k-8", std::vector<std::uint8_t>(48, 0x02));
  auto entries = spool.reusable_entries();
  ASSERT_EQ(entries.size(), 1u);  // replaced, not accumulated
  EXPECT_EQ(entries[0].bytes, 48u);
  EXPECT_EQ(entries[0].evaluations, 0u);  // fresh artifact, fresh count
  spool.put_reusable("k2-16", std::vector<std::uint8_t>(16, 0x03));
  EXPECT_EQ(spool.purge_reusable(), 2u);
  EXPECT_TRUE(spool.reusable_entries().empty());
  EXPECT_EQ(spool.stats().reusable_purged, 2u);
  EXPECT_FALSE(spool.fetch_reusable("k-8").has_value());
  SessionSpool reopened(config());
  EXPECT_TRUE(reopened.reusable_entries().empty());
}

TEST(ReusableKey, EncodesFingerprintPrefixAndBits) {
  std::array<std::uint8_t, 32> fp{};
  fp[0] = 0xDE;
  fp[1] = 0xAD;
  fp[7] = 0x01;
  EXPECT_EQ(reusable_artifact_key(fp, 16), "dead000000000001-16");
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, CountersGaugesAccumulate) {
  MetricsRegistry reg;
  reg.counter("hits").inc();
  reg.counter("hits").inc(4);
  reg.gauge("depth").set(7);
  reg.gauge("depth").add(-2);
  EXPECT_EQ(reg.counter("hits").value(), 5u);
  EXPECT_EQ(reg.gauge("depth").value(), 5);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"hits\":5"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":5"), std::string::npos);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 90; ++i) h.observe(0.001);  // ~1 ms
  for (int i = 0; i < 10; ++i) h.observe(0.1);    // ~100 ms
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.sum_seconds, 90 * 0.001 + 10 * 0.1, 1e-3);
  // p50 lands in the ~1 ms bucket, p99 in the ~100 ms bucket.
  EXPECT_LT(s.quantile_seconds(0.50), 0.01);
  EXPECT_GT(s.quantile_seconds(0.99), 0.05);
  EXPECT_NE(reg.to_json().find("\"lat\":{\"count\":100"), std::string::npos);
}

TEST(Metrics, HistogramIgnoresGarbageSamples) {
  Histogram h;
  h.observe(-1.0);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.snapshot().count, 0u);
}

}  // namespace
}  // namespace maxel::svc
