// Streaming (memory-bounded) evaluator: plan validity, equivalence with
// the dense evaluator on combinational and sequential circuits, working-
// set compression on MAC netlists, and interplay with the simulator's
// table stream (the memory-constrained client of Sec. 3).
#include <gtest/gtest.h>

#include "circuit/arith_ext.hpp"
#include "circuit/circuits.hpp"
#include "core/maxelerator.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "gc/streaming_evaluator.hpp"

namespace maxel::gc {
namespace {

using circuit::Circuit;
using circuit::MacOptions;
using crypto::Block;
using crypto::Prg;
using crypto::SystemRandom;

TEST(EvaluationPlan, SlotsCoverEveryWireWithoutConflicts) {
  const Circuit c = circuit::make_multiplier_circuit(MacOptions{16, 16, true});
  const EvaluationPlan plan = plan_evaluation(c);
  ASSERT_EQ(plan.slot_of_wire.size(), c.num_wires);
  for (const auto s : plan.slot_of_wire) EXPECT_LT(s, plan.num_slots);
  EXPECT_LT(plan.num_slots, c.num_wires);  // reuse must happen

  // No two simultaneously-live wires share a slot: replay the schedule
  // tracking liveness explicitly.
  std::vector<std::int64_t> last_use(c.num_wires, -1);
  for (std::size_t i = 0; i < c.gates.size(); ++i) {
    last_use[c.gates[i].a] = static_cast<std::int64_t>(i);
    last_use[c.gates[i].b] = static_cast<std::int64_t>(i);
  }
  for (const auto w : c.outputs) last_use[w] = static_cast<std::int64_t>(c.gates.size());
  std::vector<std::int64_t> slot_owner_until(plan.num_slots, -2);
  const auto claim = [&](circuit::Wire w, std::int64_t t) {
    const auto slot = plan.slot_of_wire[w];
    ASSERT_LE(slot_owner_until[slot], t) << "slot conflict at wire " << w;
    slot_owner_until[slot] = last_use[w];
  };
  std::int64_t t = -1;
  claim(circuit::kConstZero, t);
  claim(circuit::kConstOne, t);
  for (const auto w : c.garbler_inputs) claim(w, t);
  for (const auto w : c.evaluator_inputs) claim(w, t);
  for (std::size_t i = 0; i < c.gates.size(); ++i)
    claim(c.gates[i].out, static_cast<std::int64_t>(i));
}

TEST(StreamingEvaluator, MatchesDenseEvaluatorOnCombinational) {
  const Circuit c = circuit::make_divider_circuit(8);
  SystemRandom rng(Block{0x517, 1});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  const RoundTables tables = garbler.garble_round();

  Prg prg(Block{0x517, 2});
  std::vector<Block> g_labels, e_labels;
  for (std::size_t i = 0; i < 8; ++i) {
    g_labels.push_back(garbler.garbler_input_label(i, prg.next_bit()));
    const auto [l0, l1] = garbler.evaluator_input_labels(i);
    e_labels.push_back(prg.next_bit() ? l1 : l0);
  }
  CircuitEvaluator dense(c, Scheme::kHalfGates);
  StreamingEvaluator streaming(c, Scheme::kHalfGates);
  const auto fixed = garbler.fixed_wire_labels();
  EXPECT_EQ(streaming.eval_round(tables, g_labels, e_labels, fixed),
            dense.eval_round(tables, g_labels, e_labels, fixed));
}

TEST(StreamingEvaluator, SequentialMacAcrossRounds) {
  const MacOptions opt{8, 8, true};
  const Circuit c = circuit::make_mac_circuit(opt);
  SystemRandom rng(Block{0x517, 3});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  StreamingEvaluator evaluator(c, Scheme::kHalfGates);

  Prg prg(Block{0x517, 4});
  std::uint64_t expect = 0;
  std::vector<Block> out_labels;
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    expect = circuit::mac_reference(expect, a, x, opt);
    const RoundTables tables = garbler.garble_round();
    if (round == 0)
      evaluator.set_initial_state_labels(garbler.initial_state_labels());
    std::vector<Block> g(8), e(8);
    for (std::size_t i = 0; i < 8; ++i) {
      g[i] = garbler.garbler_input_label(i, ((a >> i) & 1) != 0);
      const auto [l0, l1] = garbler.evaluator_input_labels(i);
      e[i] = ((x >> i) & 1) != 0 ? l1 : l0;
    }
    out_labels =
        evaluator.eval_round(tables, g, e, garbler.fixed_wire_labels());
  }
  const auto decoded = decode_with_map(out_labels, garbler.output_map());
  EXPECT_EQ(circuit::from_bits(decoded), expect);
}

TEST(StreamingEvaluator, CompressesMacWorkingSet) {
  // The Sec. 3 point: a memory-constrained client should not need a
  // label per wire. For the 32-bit MAC, expect >= 4x compression.
  const Circuit c = circuit::make_mac_circuit(MacOptions{32, 32, true});
  const EvaluationPlan plan = plan_evaluation(c);
  EXPECT_GT(plan.compression(), 4.0)
      << plan.num_slots << " slots for " << plan.num_wires << " wires";
  StreamingEvaluator ev(c, Scheme::kHalfGates);
  EXPECT_EQ(ev.working_set_bytes(), plan.num_slots * 16);
  EXPECT_LT(ev.working_set_bytes(), c.num_wires * 16 / 4);
}

TEST(StreamingEvaluator, DecodesTheAcceleratorStream) {
  // Memory-constrained client against the hardware table stream.
  const std::size_t b = 8;
  core::MaxeleratorConfig cfg;
  cfg.bit_width = b;
  SystemRandom rng(Block{0x517, 5});
  core::MaxeleratorSim sim(cfg, rng);
  StreamingEvaluator evaluator(sim.netlist(), Scheme::kHalfGates);

  Prg prg(Block{0x517, 6});
  const circuit::MacOptions ref{b, b, true};
  std::uint64_t expect = 0;
  std::vector<Block> out_labels;
  std::vector<bool> out_map;
  sim.run(6, [&](core::RoundOutput&& ro) {
    if (ro.round == 0)
      evaluator.set_initial_state_labels(ro.initial_state_active);
    const std::uint64_t a = prg.next_u64() & 0xFF;
    const std::uint64_t x = prg.next_u64() & 0xFF;
    expect = circuit::mac_reference(expect, a, x, ref);
    std::vector<Block> g(b), e(b);
    for (std::size_t i = 0; i < b; ++i) {
      g[i] = ((a >> i) & 1) ? ro.garbler_labels0[i] ^ sim.delta()
                            : ro.garbler_labels0[i];
      e[i] = ((x >> i) & 1) ? ro.evaluator_labels0[i] ^ sim.delta()
                            : ro.evaluator_labels0[i];
    }
    out_labels = evaluator.eval_round(
        ro.tables, g, e,
        {ro.fixed_labels0[0], ro.fixed_labels0[1] ^ sim.delta()});
    out_map.resize(ro.output_labels0.size());
    for (std::size_t i = 0; i < out_map.size(); ++i)
      out_map[i] = ro.output_labels0[i].lsb();
  });
  EXPECT_EQ(circuit::from_bits(decode_with_map(out_labels, out_map)), expect);
}

TEST(StreamingEvaluator, TableUnderrunDetected) {
  const Circuit c = circuit::make_multiplier_circuit(MacOptions{8, 8, true});
  SystemRandom rng(Block{0x517, 7});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  RoundTables tables = garbler.garble_round();
  tables.tables.pop_back();
  StreamingEvaluator ev(c, Scheme::kHalfGates);
  std::vector<Block> g, e;
  for (std::size_t i = 0; i < 8; ++i) {
    g.push_back(garbler.garbler_input_label(i, false));
    e.push_back(garbler.evaluator_input_labels(i).first);
  }
  EXPECT_THROW(
      (void)ev.eval_round(tables, g, e, garbler.fixed_wire_labels()),
      std::runtime_error);
}

}  // namespace
}  // namespace maxel::gc
