#!/usr/bin/env bash
# Binary-level end-to-end test for the network service: starts a real
# maxel_server on an ephemeral port, runs maxel_client against it for
# >= 100 MAC rounds over TCP, then cross-checks the two JSON stats dumps
# (client must verify its decoded MAC; the payload byte counters must
# match exactly in both directions).
#
# Inputs (environment): SERVER and CLIENT point at the built binaries.
# MODE selects the delivery path: "precomputed" (default) serves from
# the garbling bank; "stream" passes --stream to the client and checks
# the chunked garble-while-transfer pipeline instead. Run by CTest as
# the `net_e2e` / `net_e2e_stream` tests (see tests/CMakeLists.txt).
set -euo pipefail
: "${SERVER:?set SERVER to the maxel_server binary}"
: "${CLIENT:?set CLIENT to the maxel_client binary}"
MODE="${MODE:-precomputed}"

client_args=()
case "$MODE" in
  precomputed) ;;
  stream) client_args+=(--stream) ;;
  *) echo "unknown MODE '$MODE' (want precomputed|stream)"; exit 1 ;;
esac

dir=$(mktemp -d)
spid=""
trap '[ -n "$spid" ] && kill "$spid" 2>/dev/null; rm -rf "$dir"' EXIT

"$SERVER" --port 0 --bits 8 --rounds 120 --sessions 1 \
          --json "$dir/server.json" >"$dir/server.log" 2>&1 &
spid=$!

# The server prints its bound (ephemeral) port on startup.
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$dir/server.log")
  [ -n "$port" ] && break
  kill -0 "$spid" 2>/dev/null || { echo "server died early:"; cat "$dir/server.log"; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "server never reported its port:"; cat "$dir/server.log"; exit 1; }

"$CLIENT" --port "$port" --bits 8 --json "$dir/client.json" \
          ${client_args[@]+"${client_args[@]}"} \
          >"$dir/client.log" 2>&1 \
  || { echo "client failed:"; cat "$dir/client.log"; exit 1; }
grep -q VERIFIED "$dir/client.log" \
  || { echo "client did not verify its MAC:"; cat "$dir/client.log"; exit 1; }

wait "$spid"  # exits 0 once its one session is served
spid=""

field() { sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p" "$1"; }
s_out=$(field "$dir/server.json" bytes_sent)
s_in=$(field "$dir/server.json" bytes_received)
c_out=$(field "$dir/client.json" bytes_sent)
c_in=$(field "$dir/client.json" bytes_received)
rounds=$(field "$dir/client.json" rounds)

[ "$rounds" -ge 100 ] \
  || { echo "only $rounds rounds completed (need >= 100)"; exit 1; }
[ "$s_out" = "$c_in" ] \
  || { echo "byte mismatch: server sent $s_out, client received $c_in"; exit 1; }
[ "$s_in" = "$c_out" ] \
  || { echo "byte mismatch: client sent $c_out, server received $s_in"; exit 1; }

if [ "$MODE" = stream ]; then
  chunks=$(field "$dir/client.json" chunks_received)
  streams=$(field "$dir/server.json" stream_sessions_served)
  [ -n "$chunks" ] && [ "$chunks" -ge 1 ] \
    || { echo "stream client reported no chunks_received"; exit 1; }
  [ "$streams" = 1 ] \
    || { echo "server served $streams stream sessions (want 1)"; exit 1; }
fi

echo "net_e2e[$MODE]: $rounds rounds over TCP, $c_in B down / $c_out B up, counters match"
