#!/usr/bin/env bash
# Binary-level end-to-end test for the network service: starts a real
# maxel_server on an ephemeral port, runs maxel_client against it for
# >= 100 MAC rounds over TCP, then cross-checks the two JSON stats dumps
# (client must verify its decoded MAC; the payload byte counters must
# match exactly in both directions).
#
# Inputs (environment): SERVER and CLIENT point at the built binaries.
# MODE selects the delivery path: "precomputed" (default) serves from
# the garbling bank; "stream" passes --stream to the client and checks
# the chunked garble-while-transfer pipeline; "reusable" runs two
# client processes against one garble-once server and proves a single
# garbling fed both sessions; "chaos" replays a matrix of
# MAXEL_FAULT_PLAN schedules against the stock binaries — in both the
# classic and reusable session modes — every run must end, under a hard
# watchdog, in a VERIFIED MAC or a typed maxel_client error (see
# docs/TESTING.md). Run by CTest as the `net_e2e` / `net_e2e_stream` /
# `net_e2e_reusable` / `net_e2e_chaos` tests.
set -euo pipefail
: "${SERVER:?set SERVER to the maxel_server binary}"
: "${CLIENT:?set CLIENT to the maxel_client binary}"
MODE="${MODE:-precomputed}"

client_args=()
case "$MODE" in
  precomputed) ;;
  stream) client_args+=(--stream) ;;
  reusable) ;;
  chaos) ;;
  *) echo "unknown MODE '$MODE' (want precomputed|stream|reusable|chaos)"; exit 1 ;;
esac

dir=$(mktemp -d)
spid=""
trap '[ -n "$spid" ] && kill "$spid" 2>/dev/null; rm -rf "$dir"' EXIT

start_server() {  # start_server <extra server args...>
  "$SERVER" --port 0 --bits 8 "$@" --json "$dir/server.json" \
            >"$dir/server.log" 2>&1 &
  spid=$!
  # The server prints its bound (ephemeral) port on startup.
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$dir/server.log")
    [ -n "$port" ] && break
    kill -0 "$spid" 2>/dev/null || { echo "server died early:"; cat "$dir/server.log"; exit 1; }
    sleep 0.1
  done
  [ -n "$port" ] || { echo "server never reported its port:"; cat "$dir/server.log"; exit 1; }
}

field() { sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p" "$1"; }

if [ "$MODE" = chaos ]; then
  # One long-lived server (--sessions 0) with a tight idle deadline; the
  # fault schedules reach the unmodified client purely through the
  # MAXEL_FAULT_PLAN environment knob.
  start_server --rounds 24 --sessions 0 --idle-timeout 2000 --quiet

  plans=(
    "close@send:0"
    "close@recv:6"
    "trunc@send:2"
    "refuse@connect:0"
    "seed=4;split@send:2"
    "seed=11;stall@recv:1:300"
  )
  # The same contract in reusable mode, where the faults land on the
  # artifact transfer and the d/z bit exchange instead of the table
  # stream; the server must keep serving off its one garbling.
  reusable_plans=(
    "close@send:1"
    "seed=3;trunc@send:2"
    "refuse@connect:0"
    "seed=7;close@recv:4"
  )
  recovered=0

  chaos_run() {  # chaos_run <tag> <plan> <extra client args...>
    local tag="$1" plan="$2"; shift 2
    local rc=0
    MAXEL_FAULT_PLAN="$plan" timeout 60 \
      "$CLIENT" --port "$port" --bits 8 --retries 4 --retry-backoff 20 \
                --net-timeout 2000 --quiet --json "$dir/$tag.json" "$@" \
                >"$dir/$tag.log" 2>&1 || rc=$?
    if [ "$rc" = 124 ]; then
      echo "chaos[$tag $plan]: client hung past the 60 s watchdog"
      cat "$dir/$tag.log"; exit 1
    fi
    # A silent wrong answer is never acceptable, whatever the exit code.
    if grep -q "MISMATCH" "$dir/$tag.log"; then
      echo "chaos[$tag $plan]: client decoded a wrong MAC without a typed error"
      cat "$dir/$tag.log"; exit 1
    fi
    if [ "$rc" = 0 ]; then
      grep -q VERIFIED "$dir/$tag.log" \
        || { echo "chaos[$tag $plan]: exit 0 without VERIFIED"; cat "$dir/$tag.log"; exit 1; }
      attempts=$(field "$dir/$tag.json" attempts)
      [ -n "$attempts" ] && [ "$attempts" -ge 2 ] && recovered=$((recovered + 1))
      echo "chaos[$tag $plan]: VERIFIED after $attempts attempt(s)"
    else
      grep -q "maxel_client:" "$dir/$tag.log" \
        || { echo "chaos[$tag $plan]: exit $rc without a typed error"; cat "$dir/$tag.log"; exit 1; }
      echo "chaos[$tag $plan]: typed error after retries: $(grep maxel_client: "$dir/$tag.log" | head -1)"
    fi
    kill -0 "$spid" 2>/dev/null \
      || { echo "chaos[$tag $plan]: server died"; cat "$dir/server.log"; exit 1; }
  }

  for i in "${!plans[@]}"; do
    chaos_run "c$i" "${plans[$i]}"
  done
  for i in "${!reusable_plans[@]}"; do
    chaos_run "r$i" "${reusable_plans[$i]}" --mode reusable
  done
  [ "$recovered" -ge 1 ] \
    || { echo "chaos: no scenario recovered via retry (want attempts >= 2 at least once)"; exit 1; }

  # Graceful server shutdown must still work after all that abuse.
  kill -TERM "$spid"
  wait "$spid" || { echo "server exited non-zero after chaos run:"; cat "$dir/server.log"; exit 1; }
  spid=""
  served=$(field "$dir/server.json" sessions_served)
  errors=$(field "$dir/server.json" connection_errors)
  r_served=$(field "$dir/server.json" reusable_sessions_served)
  r_garbles=$(field "$dir/server.json" reusable_garbles)
  [ "$served" -ge 1 ] || { echo "server served no sessions"; exit 1; }
  [ "$errors" -ge 1 ] || { echo "server saw no connection errors (faults never landed?)"; exit 1; }
  [ "$r_served" -ge 1 ] || { echo "server served no reusable sessions"; exit 1; }
  [ "$r_garbles" = 1 ] \
    || { echo "server garbled $r_garbles reusable circuits under chaos (want exactly 1)"; exit 1; }
  echo "net_e2e[chaos]: $(( ${#plans[@]} + ${#reusable_plans[@]} )) plans," \
       "$recovered recovered via retry, $served sessions served" \
       "($r_served reusable off $r_garbles garbling)," \
       "$errors connection errors survived"
  exit 0
fi

if [ "$MODE" = reusable ]; then
  # Garble-once proof at the binary level: one server, two fresh client
  # processes. Each client pulls the artifact (its own process has no
  # cache) but the server must report exactly ONE garbling for both
  # sessions, and every byte counter must reconcile across the wire.
  start_server --rounds 120 --sessions 2 --mode reusable --quiet

  for i in 1 2; do
    "$CLIENT" --port "$port" --bits 8 --mode reusable --quiet \
              --json "$dir/client$i.json" >"$dir/client$i.log" 2>&1 \
      || { echo "reusable client $i failed:"; cat "$dir/client$i.log"; exit 1; }
    grep -q VERIFIED "$dir/client$i.log" \
      || { echo "reusable client $i did not verify:"; cat "$dir/client$i.log"; exit 1; }
  done

  wait "$spid"  # exits 0 once its two sessions are served
  spid=""

  r_served=$(field "$dir/server.json" reusable_sessions_served)
  r_sent=$(field "$dir/server.json" reusable_artifacts_sent)
  r_garbles=$(field "$dir/server.json" reusable_garbles)
  [ "$r_served" = 2 ] \
    || { echo "server served $r_served reusable sessions (want 2)"; exit 1; }
  [ "$r_sent" = 2 ] \
    || { echo "server sent $r_sent artifacts (two fresh clients want 2)"; exit 1; }
  [ "$r_garbles" = 1 ] \
    || { echo "server garbled $r_garbles times (garble-once wants 1)"; exit 1; }

  s_out=$(field "$dir/server.json" bytes_sent)
  s_in=$(field "$dir/server.json" bytes_received)
  c_out=$(( $(field "$dir/client1.json" bytes_sent) + $(field "$dir/client2.json" bytes_sent) ))
  c_in=$(( $(field "$dir/client1.json" bytes_received) + $(field "$dir/client2.json" bytes_received) ))
  rounds=$(( $(field "$dir/client1.json" rounds) + $(field "$dir/client2.json" rounds) ))
  [ "$rounds" -ge 200 ] \
    || { echo "only $rounds rounds completed across both sessions (need >= 200)"; exit 1; }
  [ "$s_out" = "$c_in" ] \
    || { echo "byte mismatch: server sent $s_out, clients received $c_in"; exit 1; }
  [ "$s_in" = "$c_out" ] \
    || { echo "byte mismatch: clients sent $c_out, server received $s_in"; exit 1; }
  echo "net_e2e[reusable]: $rounds rounds over 2 sessions off 1 garbling," \
       "$c_in B down / $c_out B up, counters match"
  exit 0
fi

start_server --rounds 120 --sessions 1

"$CLIENT" --port "$port" --bits 8 --json "$dir/client.json" \
          ${client_args[@]+"${client_args[@]}"} \
          >"$dir/client.log" 2>&1 \
  || { echo "client failed:"; cat "$dir/client.log"; exit 1; }
grep -q VERIFIED "$dir/client.log" \
  || { echo "client did not verify its MAC:"; cat "$dir/client.log"; exit 1; }

wait "$spid"  # exits 0 once its one session is served
spid=""

s_out=$(field "$dir/server.json" bytes_sent)
s_in=$(field "$dir/server.json" bytes_received)
c_out=$(field "$dir/client.json" bytes_sent)
c_in=$(field "$dir/client.json" bytes_received)
rounds=$(field "$dir/client.json" rounds)

[ "$rounds" -ge 100 ] \
  || { echo "only $rounds rounds completed (need >= 100)"; exit 1; }
[ "$s_out" = "$c_in" ] \
  || { echo "byte mismatch: server sent $s_out, client received $c_in"; exit 1; }
[ "$s_in" = "$c_out" ] \
  || { echo "byte mismatch: client sent $c_out, server received $s_in"; exit 1; }

if [ "$MODE" = stream ]; then
  chunks=$(field "$dir/client.json" chunks_received)
  streams=$(field "$dir/server.json" stream_sessions_served)
  [ -n "$chunks" ] && [ "$chunks" -ge 1 ] \
    || { echo "stream client reported no chunks_received"; exit 1; }
  [ "$streams" = 1 ] \
    || { echo "server served $streams stream sessions (want 1)"; exit 1; }
fi

echo "net_e2e[$MODE]: $rounds rounds over TCP, $c_in B down / $c_out B up, counters match"
