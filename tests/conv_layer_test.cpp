// Private conv layer: the im2col lowering and the pooled garbled
// execution are differentially pinned against a DIRECT nested-loop
// convolution that never forms the im2col matrix — agreement proves the
// lowering, the core sharding, and the per-element MAC sessions
// preserved the layer bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/prg.hpp"
#include "ml/conv_layer.hpp"
#include "sweep_env.hpp"

namespace maxel::ml {
namespace {

using crypto::Prg;

Tensor random_tensor(Prg& prg, std::size_t n, std::uint64_t mask) {
  Tensor t(n);
  for (auto& v : t) v = prg.next_u64() & mask;
  return t;
}

TEST(ConvShape, Arithmetic) {
  const ConvLayerShape s{3, 8, 8, 8, 3, 3, 1};
  EXPECT_EQ(s.out_h(), 6u);
  EXPECT_EQ(s.out_w(), 6u);
  EXPECT_EQ(s.patch(), 27u);
  EXPECT_EQ(s.positions(), 36u);
  EXPECT_EQ(s.total_macs(), 8u * 36u * 27u);
  const ConvLayerShape strided{1, 7, 7, 2, 3, 3, 2};
  EXPECT_EQ(strided.out_h(), 3u);
  EXPECT_EQ(strided.positions(), 9u);
}

TEST(Im2col, IdentityKernelIsIdentity) {
  // 1x1 kernel, stride 1: X is just the input laid out row-per-channel.
  const ConvLayerShape s{2, 3, 3, 1, 1, 1, 1};
  Prg prg(crypto::Block{0xC0, 0x01});
  const Tensor in = random_tensor(prg, 2 * 3 * 3, 0xFFFF);
  const auto x = im2col(s, in);
  ASSERT_EQ(x.size(), 2u);
  ASSERT_EQ(x[0].size(), 9u);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t p = 0; p < 9; ++p)
      EXPECT_EQ(x[c][p], in[c * 9 + p]);
}

TEST(Im2col, PatchRowsReadTheRightWindow) {
  // Single channel 4x4 with values == linear index: window reads are
  // checkable by hand.
  const ConvLayerShape s{1, 4, 4, 1, 2, 2, 1};
  Tensor in(16);
  for (std::size_t i = 0; i < 16; ++i) in[i] = i;
  const auto x = im2col(s, in);
  ASSERT_EQ(x.size(), 4u);       // K = 2*2
  ASSERT_EQ(x[0].size(), 9u);    // P = 3*3
  // Patch row (ky=0,kx=0) at position (oy,ox) reads in[oy*4+ox].
  EXPECT_EQ(x[0][0], 0u);
  EXPECT_EQ(x[0][4], 5u);        // oy=1, ox=1
  // Patch row (ky=1,kx=1) reads in[(oy+1)*4 + ox+1].
  EXPECT_EQ(x[3][0], 5u);
  EXPECT_EQ(x[3][8], 15u);       // oy=2, ox=2
}

TEST(ConvReference, MatchesManualSmallCase) {
  // 1 channel, 2x2 input, 1 filter 2x2 => single output position.
  const ConvLayerShape s{1, 2, 2, 1, 2, 2, 1};
  const std::vector<Tensor> w = {{1, 2, 3, 4}};
  const Tensor in = {10, 20, 30, 40};
  const auto y = conv_reference(s, w, in, 16);
  ASSERT_EQ(y.size(), 1u);
  ASSERT_EQ(y[0].size(), 1u);
  EXPECT_EQ(y[0][0], 10u + 40u + 90u + 160u);
  // Wraparound semantics at the layer's bit width.
  const auto y8 = conv_reference(s, w, in, 8);
  EXPECT_EQ(y8[0][0], 300u & 0xFF);
}

// The tentpole claim for the layer: garbled pooled execution ==
// direct convolution, for layer shapes with multi-channel input,
// stride > 1, and core counts that do not divide the element count.
TEST(ConvLayerGarbled, MatchesDirectConvolution) {
  const std::uint64_t seed = test::sweep_seed(0xC02Full);
  SCOPED_TRACE("MAXEL_SWEEP_SEED=" + std::to_string(seed));
  Prg prg(crypto::Block{seed, 0xC0});
  const ConvLayerShape shapes[] = {
      {1, 5, 5, 2, 3, 3, 1},  // single channel
      {3, 6, 6, 4, 3, 3, 1},  // RGB-shaped
      {2, 7, 7, 3, 3, 3, 2},  // strided
  };
  core::GcCorePool pool(3, crypto::Block{0xC0, 0x2F});
  for (const auto& s : shapes) {
    const std::size_t bits = 16;
    std::vector<Tensor> w(s.out_c);
    for (auto& f : w) f = random_tensor(prg, s.patch(), 0xFFFF);
    const Tensor in = random_tensor(prg, s.in_c * s.in_h * s.in_w, 0xFFFF);

    const auto res = conv_layer_on_pool(s, w, in, bits, pool);
    EXPECT_TRUE(res.verified);
    EXPECT_EQ(res.output, conv_reference(s, w, in, bits));
    EXPECT_EQ(res.cores, 3u);
    EXPECT_GT(res.tables, 0u);
    // Table count scales with total MACs: each K-round MAC garbles the
    // same per-round inventory, so tables % total elements == 0.
    EXPECT_EQ(res.tables % (s.out_c * s.positions()), 0u);
  }
}

TEST(ConvLayerGarbled, CoreCountInvariance) {
  // The decoded layer must be identical for any pool size (the decoded
  // product is plaintext; sharding only moves work).
  Prg prg(crypto::Block{0xC0, 0x3A});
  const ConvLayerShape s{2, 5, 5, 2, 2, 2, 1};
  std::vector<Tensor> w(s.out_c);
  for (auto& f : w) f = random_tensor(prg, s.patch(), 0xFF);
  const Tensor in = random_tensor(prg, s.in_c * s.in_h * s.in_w, 0xFF);

  core::GcCorePool p1(1, crypto::Block{1, 1});
  core::GcCorePool p4(4, crypto::Block{4, 4});
  const auto r1 = conv_layer_on_pool(s, w, in, 8, p1);
  const auto r4 = conv_layer_on_pool(s, w, in, 8, p4);
  EXPECT_TRUE(r1.verified);
  EXPECT_TRUE(r4.verified);
  EXPECT_EQ(r1.output, r4.output);
}

}  // namespace
}  // namespace maxel::ml
