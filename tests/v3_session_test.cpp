// Session-layer tests for the v3 protocol core: full garble/serve/eval
// round trips fed by the correlated-OT pool, claim lifecycle across
// back-to-back sessions, lineage checks, and the spool byte codec.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "circuit/circuits.hpp"
#include "circuit/netlist.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "ot/pool.hpp"
#include "proto/channel.hpp"
#include "proto/threaded_channel.hpp"
#include "proto/v3_session.hpp"

namespace maxel {
namespace {

using circuit::MacOptions;
using crypto::Block;
using crypto::SystemRandom;

Block make_delta(SystemRandom& rng) {
  Block d = rng.next_block();
  d.lo |= 1u;
  return d;
}

std::vector<std::vector<bool>> random_bits(crypto::Prg& prg,
                                           std::size_t rounds,
                                           std::size_t width) {
  std::vector<std::vector<bool>> out(rounds);
  for (auto& row : out) row = prg.bits(width);
  return out;
}

std::vector<bool> plain_final(const circuit::Circuit& c,
                              const std::vector<std::vector<bool>>& g,
                              const std::vector<std::vector<bool>>& e) {
  std::vector<bool> state(c.dffs.size());
  for (std::size_t i = 0; i < c.dffs.size(); ++i) state[i] = c.dffs[i].init;
  std::vector<bool> out;
  for (std::size_t r = 0; r < g.size(); ++r)
    out = circuit::eval_plain(c, g[r], e[r], &state);
  return out;
}

// A server/client pool pair with the base OT already run (interleaved
// over a MemoryChannel pair) and one extension batch materialized.
struct PoolPair {
  ot::CorrelatedPoolSender server;
  ot::CorrelatedPoolReceiver client;
  Block delta;

  explicit PoolPair(std::uint64_t seed, std::size_t extend_n = 2048)
      : server(seeded_delta(seed), /*pool_id=*/seed), delta(server.delta()) {
    SystemRandom s_rng(Block{seed, 11});
    SystemRandom c_rng(Block{seed, 13});
    auto [s_ch, c_ch] = proto::MemoryChannel::create_pair();
    ot::pool_base_setup(server, client, *s_ch, *c_ch, s_rng, c_rng);
    extend(extend_n);
  }

  void extend(std::size_t n) {
    auto [s_ch, c_ch] = proto::MemoryChannel::create_pair();
    client.extend(*c_ch, n);
    server.extend(*s_ch, n);
  }

  static Block seeded_delta(std::uint64_t seed) {
    SystemRandom rng(Block{seed, 7});
    return make_delta(rng);
  }
};

// Runs one full v3 session over a ThreadedChannel pair and checks the
// decoded final-round outputs against the plaintext reference.
void run_session(const circuit::Circuit& c, PoolPair& pp, std::size_t rounds,
                 std::uint64_t seed) {
  const gc::V3Analysis an = gc::analyze_v3(c);
  crypto::Prg in_prg(Block{seed, 0x5e55});
  const auto g_bits = random_bits(in_prg, rounds, c.garbler_inputs.size());
  const auto e_bits = random_bits(in_prg, rounds, c.evaluator_inputs.size());

  SystemRandom g_rng(Block{seed, 21});
  const Block label_seed = g_rng.next_block();
  const auto session =
      proto::garble_session_v3(c, an, g_bits, pp.delta, label_seed, g_rng);

  const auto claim = pp.server.claim(rounds * c.evaluator_inputs.size());
  pp.client.mark_consumed(claim.start, claim.count);

  auto [s_ch, c_ch] = proto::ThreadedChannel::create_pair();
  std::vector<bool> decoded;
  std::thread evaluator([&] {
    decoded = proto::eval_v3_rounds(*c_ch, c, an, e_bits, pp.client,
                                    claim.start);
  });
  proto::serve_v3_rounds(*s_ch, c, session, pp.server, claim);
  evaluator.join();
  pp.server.consume(claim);

  EXPECT_EQ(decoded, plain_final(c, g_bits, e_bits));
}

TEST(V3Session, MacSessionMatchesPlainReference) {
  const auto c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  PoolPair pp(1);
  run_session(c, pp, 16, 1);
}

TEST(V3Session, WideMacAndOtherShapes) {
  PoolPair pp(2);
  run_session(circuit::make_mac_circuit(MacOptions{16, 16, true}), pp, 8, 2);
  run_session(circuit::make_millionaires_circuit(8), pp, 4, 3);
  run_session(circuit::make_multiplier_circuit(MacOptions{6, 6, true}), pp, 5,
              4);
}

TEST(V3Session, ManySessionsShareOnePoolWithMonotoneClaims) {
  const auto c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  PoolPair pp(3);
  std::uint64_t prev_end = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    const std::uint64_t before = pp.server.stats().consumed;
    run_session(c, pp, 4, 100 + s);
    const auto st = pp.server.stats();
    EXPECT_EQ(st.consumed, before + 4 * c.evaluator_inputs.size());
    EXPECT_EQ(st.claimed, 0u);
    EXPECT_GE(pp.client.watermark(), prev_end);
    prev_end = pp.client.watermark();
  }
}

TEST(V3Session, DiscardedClaimBurnsIndicesButPoolRollsForward) {
  const auto c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  PoolPair pp(4);
  // Simulate a session dying before its rounds: claim then discard.
  const auto dead = pp.server.claim(64);
  pp.server.discard(dead);
  const auto st = pp.server.stats();
  EXPECT_EQ(st.discarded, 64u);
  EXPECT_EQ(st.claimed, 0u);
  // The next session claims a strictly later range and still verifies
  // (the client watermark jumps over the burned gap).
  run_session(c, pp, 4, 41);
  EXPECT_GE(pp.client.watermark(), dead.start + dead.count);
}

TEST(V3Session, LineageMismatchIsTyped) {
  const auto c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const gc::V3Analysis an = gc::analyze_v3(c);
  PoolPair pp(5);
  SystemRandom rng(Block{5, 99});
  const Block other_delta = make_delta(rng);
  ASSERT_NE(other_delta, pp.delta);
  crypto::Prg in_prg(Block{5, 0x5e55});
  const auto g_bits = random_bits(in_prg, 1, c.garbler_inputs.size());
  const auto session = proto::garble_session_v3(c, an, g_bits, other_delta,
                                                rng.next_block(), rng);
  const auto claim = pp.server.claim(c.evaluator_inputs.size());
  auto [s_ch, c_ch] = proto::MemoryChannel::create_pair();
  EXPECT_THROW(proto::serve_v3_rounds(*s_ch, c, session, pp.server, claim),
               std::logic_error);
  pp.server.discard(claim);
}

TEST(V3Session, ClaimSizeMismatchIsTyped) {
  const auto c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const gc::V3Analysis an = gc::analyze_v3(c);
  PoolPair pp(6);
  crypto::Prg in_prg(Block{6, 0x5e55});
  const auto g_bits = random_bits(in_prg, 2, c.garbler_inputs.size());
  SystemRandom rng(Block{6, 21});
  const auto session = proto::garble_session_v3(c, an, g_bits, pp.delta,
                                                rng.next_block(), rng);
  // Claim for one round, session has two.
  const auto claim = pp.server.claim(c.evaluator_inputs.size());
  auto [s_ch, c_ch] = proto::MemoryChannel::create_pair();
  EXPECT_THROW(proto::serve_v3_rounds(*s_ch, c, session, pp.server, claim),
               std::logic_error);
  pp.server.discard(claim);
}

TEST(V3SessionCodec, RoundTripsAndServesIdentically) {
  const auto c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const gc::V3Analysis an = gc::analyze_v3(c);
  PoolPair pp(7);
  crypto::Prg in_prg(Block{7, 0x5e55});
  const std::size_t rounds = 6;
  const auto g_bits = random_bits(in_prg, rounds, c.garbler_inputs.size());
  const auto e_bits = random_bits(in_prg, rounds, c.evaluator_inputs.size());
  SystemRandom rng(Block{7, 21});
  const auto session = proto::garble_session_v3(c, an, g_bits, pp.delta,
                                                rng.next_block(), rng);

  const auto bytes = proto::serialize_session_v3(session);
  const auto loaded = proto::parse_session_v3(bytes.data(), bytes.size());
  ASSERT_EQ(loaded.round_count(), session.round_count());
  EXPECT_EQ(loaded.delta, session.delta);
  EXPECT_EQ(loaded.label_seed, session.label_seed);
  EXPECT_EQ(loaded.pool_lineage, session.pool_lineage);
  for (std::size_t r = 0; r < rounds; ++r) {
    EXPECT_EQ(loaded.rounds[r].rows, session.rounds[r].rows);
    EXPECT_EQ(loaded.rounds[r].evaluator_pairs,
              session.rounds[r].evaluator_pairs);
    EXPECT_EQ(loaded.rounds[r].output_map, session.rounds[r].output_map);
    EXPECT_EQ(loaded.rounds[r].late_labels0, session.rounds[r].late_labels0);
  }

  // The reloaded session must serve byte-for-byte like the original.
  const auto claim = pp.server.claim(rounds * c.evaluator_inputs.size());
  pp.client.mark_consumed(claim.start, claim.count);
  auto [s_ch, c_ch] = proto::ThreadedChannel::create_pair();
  std::vector<bool> decoded;
  std::thread evaluator([&] {
    decoded = proto::eval_v3_rounds(*c_ch, c, an, e_bits, pp.client,
                                    claim.start);
  });
  proto::serve_v3_rounds(*s_ch, c, loaded, pp.server, claim);
  evaluator.join();
  pp.server.consume(claim);
  EXPECT_EQ(decoded, plain_final(c, g_bits, e_bits));
}

TEST(V3SessionCodec, EveryTruncationFailsTyped) {
  const auto c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const gc::V3Analysis an = gc::analyze_v3(c);
  SystemRandom rng(Block{8, 21});
  const Block delta = make_delta(rng);
  crypto::Prg in_prg(Block{8, 0x5e55});
  const auto g_bits = random_bits(in_prg, 2, c.garbler_inputs.size());
  const auto session =
      proto::garble_session_v3(c, an, g_bits, delta, rng.next_block(), rng);
  const auto bytes = proto::serialize_session_v3(session);
  for (std::size_t n = 0; n < bytes.size(); ++n)
    EXPECT_THROW(proto::parse_session_v3(bytes.data(), n),
                 proto::V3FormatError)
        << "truncation at " << n;
  // Trailing garbage is also rejected.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(proto::parse_session_v3(padded.data(), padded.size()),
               proto::V3FormatError);
}

TEST(V3SessionCodec, MutationsNeverCrashAndLineageIsChecked) {
  const auto c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  const gc::V3Analysis an = gc::analyze_v3(c);
  SystemRandom rng(Block{9, 21});
  const Block delta = make_delta(rng);
  crypto::Prg in_prg(Block{9, 0x5e55});
  const auto g_bits = random_bits(in_prg, 2, c.garbler_inputs.size());
  const auto session =
      proto::garble_session_v3(c, an, g_bits, delta, rng.next_block(), rng);
  const auto bytes = proto::serialize_session_v3(session);

  // Flipping any delta or lineage byte must be caught by the lineage
  // binding (the codec refuses a session whose stored lineage does not
  // match its stored delta).
  for (std::size_t off = 8; off < 8 + 16; ++off) {
    auto m = bytes;
    m[off] ^= 0x40;
    EXPECT_THROW(proto::parse_session_v3(m.data(), m.size()),
                 proto::V3FormatError)
        << "delta byte " << off;
  }

  crypto::Prg prg(Block{10, 0xfa11});
  for (int trial = 0; trial < 200; ++trial) {
    auto m = bytes;
    const std::size_t hits = 1 + prg.next_below(4);
    for (std::size_t h = 0; h < hits; ++h)
      m[prg.next_below(m.size())] ^=
          static_cast<std::uint8_t>(1 + prg.next_below(255));
    try {
      (void)proto::parse_session_v3(m.data(), m.size());
    } catch (const proto::V3FormatError&) {
    }
  }
}

}  // namespace
}  // namespace maxel
