// Tests for the FPGA substrate models: resource estimation (Table 1),
// the PCIe link model, the per-core table memory port constraints, and
// the label-generator bank power-gating accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "circuit/circuits.hpp"
#include "circuit/optimize.hpp"
#include "crypto/rng.hpp"
#include "hwsim/label_bank.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/pcie.hpp"
#include "hwsim/power.hpp"
#include "hwsim/resource_model.hpp"
#include "hwsim/schedule.hpp"

namespace maxel::hwsim {
namespace {

TEST(ResourceModel, MatchesPaperAtCalibrationPoints) {
  // b=8 and b=32 are calibration points: the structural model must land
  // within 1% of Table 1 there.
  for (const std::size_t b : {8u, 32u}) {
    const ResourceUsage model = estimate_mac_unit(b);
    const ResourceUsage paper = paper_table1(b);
    EXPECT_NEAR(model.lut, paper.lut, 0.01 * paper.lut) << "b=" << b;
    EXPECT_NEAR(model.flip_flop, paper.flip_flop, 0.01 * paper.flip_flop);
    EXPECT_NEAR(model.lutram, paper.lutram, 0.01 * paper.lutram);
  }
}

TEST(ResourceModel, PredictsTheUncalibratedColumn) {
  // b=16 is a prediction; the paper's reproduction claim is linear-ish
  // growth, so within 10% counts as reproducing Table 1's shape.
  const ResourceUsage model = estimate_mac_unit(16);
  const ResourceUsage paper = paper_table1(16);
  EXPECT_NEAR(model.lut, paper.lut, 0.10 * paper.lut);
  EXPECT_NEAR(model.flip_flop, paper.flip_flop, 0.10 * paper.flip_flop);
  EXPECT_NEAR(model.lutram, paper.lutram, 0.25 * paper.lutram);
}

TEST(ResourceModel, GrowsMonotonicallyAndRoughlyLinearly) {
  const ResourceUsage r8 = estimate_mac_unit(8);
  const ResourceUsage r16 = estimate_mac_unit(16);
  const ResourceUsage r32 = estimate_mac_unit(32);
  EXPECT_LT(r8.lut, r16.lut);
  EXPECT_LT(r16.lut, r32.lut);
  // "Resource utilization increases linearly with b": doubling b should
  // cost between 1.5x and 2.5x LUTs.
  EXPECT_GT(r32.lut / r16.lut, 1.5);
  EXPECT_LT(r32.lut / r16.lut, 2.5);
}

TEST(ResourceModel, ArchitectureFormulas) {
  const MacArchitecture a{32};
  EXPECT_EQ(a.cores(), 24u);
  EXPECT_EQ(a.ands_per_stage(), 72u);
  EXPECT_EQ(a.idle_slots_per_stage(), 0u);
  EXPECT_EQ(a.cycles_per_mac(), 96u);
  EXPECT_EQ(a.latency_stages(), 32u + 5u + 2u);
  const MacArchitecture b{16};
  EXPECT_EQ(b.idle_slots_per_stage(), 2u);  // the paper's "highest 2"
}

TEST(ResourceModel, DeviceFitsRoughly25MacUnits) {
  // Sec. 6: "25 times more GC cores can fit in our current implementation
  // platform" — i.e. O(25) 32-bit MAC units on the XCVU095.
  const std::size_t units = max_mac_units(32);
  EXPECT_GE(units, 4u);
  EXPECT_LE(units, 40u);
}

TEST(ResourceModel, RejectsOutOfRangeWidth) {
  EXPECT_THROW((void)estimate_mac_unit(2), std::invalid_argument);
  EXPECT_THROW((void)estimate_mac_unit(80), std::invalid_argument);
  EXPECT_THROW((void)paper_table1(10), std::invalid_argument);
}

TEST(Pcie, TransferTimeScalesWithBytes) {
  const PcieLink link;
  EXPECT_EQ(link.transfer_seconds(0), 0.0);
  const double t1 = link.transfer_seconds(1 << 20);
  const double t64 = link.transfer_seconds(64 << 20);
  EXPECT_GT(t64, 50 * t1 * 0.5);
  EXPECT_GT(t1, link.config().latency_sec);
}

TEST(Pcie, RecordsTraffic) {
  PcieLink link;
  link.record_transfer(1000);
  link.record_transfer(2000);
  EXPECT_EQ(link.bytes_moved(), 3000u);
  EXPECT_EQ(link.transfers(), 2u);
  EXPECT_GT(link.seconds_busy(), 0.0);
}

TEST(Pcie, TableRateDerivedFromBandwidth) {
  PcieLinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 3.2e9;
  const PcieLink link(cfg);
  EXPECT_DOUBLE_EQ(link.max_tables_per_sec(32), 1e8);
}

TEST(TableMemory, SingleWritePortPerBlock) {
  TableMemory mem(4, 16);
  mem.write(0, /*cycle=*/1);
  EXPECT_THROW(mem.write(0, 1), std::logic_error);
  mem.write(1, 1);  // different block, same cycle: fine
  mem.write(0, 2);
  EXPECT_EQ(mem.total_writes(), 3u);
}

TEST(TableMemory, SingleSharedReadPort) {
  TableMemory mem(2, 16);
  mem.write(0, 0);
  mem.write(1, 0);
  EXPECT_TRUE(mem.drain_one(1));
  EXPECT_THROW((void)mem.drain_one(1), std::logic_error);
  EXPECT_TRUE(mem.drain_one(2));
  EXPECT_FALSE(mem.drain_one(3));  // empty
}

TEST(TableMemory, RoundRobinDrainAndPeakFill) {
  TableMemory mem(2, 16);
  for (std::uint64_t c = 0; c < 6; ++c) mem.write(c % 2, c);
  EXPECT_EQ(mem.peak_fill(), 6u);
  std::uint64_t cycle = 100;
  while (mem.total_fill() > 0) EXPECT_TRUE(mem.drain_one(cycle++));
  EXPECT_EQ(mem.total_reads(), 6u);
}

TEST(TableMemory, OverflowBackPressureIsCounted) {
  TableMemory mem(1, 2);
  mem.write(0, 0);
  mem.write(0, 1);
  mem.write(0, 2);  // full: stall
  EXPECT_EQ(mem.overflow_stalls(), 1u);
  EXPECT_EQ(mem.total_fill(), 2u);
}

TEST(LabelBank, TracksConsumptionAndGating) {
  crypto::SystemRandom rng(crypto::Block{3, 3});
  // Capacity 512 bits/cycle, buffer of one cycle, starting full.
  LabelBank bank(/*bits_per_cycle=*/512, rng, /*buffer_depth_bits=*/512);
  (void)bank.next_label();  // consumes 128 of the 512 buffered bits
  bank.end_cycle();         // refills 128, gates the other 384
  bank.end_cycle();         // buffer full: fully gated cycle
  EXPECT_EQ(bank.total_bits(), 128u);
  EXPECT_EQ(bank.cycles(), 2u);
  EXPECT_EQ(bank.peak_bits_per_cycle(), 128u);
  EXPECT_EQ(bank.underflow_stalls(), 0u);
  // 128 of 1024 produced bit-cycles active -> 87.5% gated.
  EXPECT_NEAR(bank.gated_fraction(), 0.875, 1e-9);
}

TEST(LabelBank, BurstsAreAbsorbedByTheBuffer) {
  crypto::SystemRandom rng(crypto::Block{4, 4});
  LabelBank bank(128, rng, /*buffer_depth_bits=*/1024);
  for (int i = 0; i < 8; ++i) (void)bank.next_label();  // one-cycle burst
  bank.end_cycle();
  EXPECT_EQ(bank.underflow_stalls(), 0u);
  EXPECT_EQ(bank.peak_bits_per_cycle(), 1024u);
}

TEST(LabelBank, UnderflowDetectedWhenUndersized) {
  crypto::SystemRandom rng(crypto::Block{5, 5});
  LabelBank bank(128, rng, /*buffer_depth_bits=*/128);
  (void)bank.next_label();
  (void)bank.next_label();  // buffer empty: stall recorded
  bank.end_cycle();
  EXPECT_EQ(bank.underflow_stalls(), 1u);
}

TEST(LabelBank, LabelsAreFresh) {
  crypto::SystemRandom rng(crypto::Block{5, 5});
  LabelBank bank(128, rng);
  EXPECT_NE(bank.next_label(), bank.next_label());
}


TEST(PowerModel, EnergyScalesWithActivity) {
  const PowerModel pm;
  const auto small = pm.estimate(32, 1000, 1u << 20, 0.9, 10000, 200.0);
  const auto big = pm.estimate(32, 10000, 10u << 20, 0.9, 100000, 200.0);
  EXPECT_GT(big.dynamic_gc_j, 9.0 * small.dynamic_gc_j);
  EXPECT_GT(big.total_j(), small.total_j());
  EXPECT_GT(small.average_watts(1e-3), 0.0);
}

TEST(PowerModel, GatingSavingMatchesGatedFraction) {
  const PowerModel pm;
  // 90% gated: the avoided energy is 9x the spent RNG energy.
  const auto e = pm.estimate(32, 0, 1u << 20, 0.9, 1000, 200.0);
  EXPECT_NEAR(e.rng_gated_saving_j, 9.0 * e.dynamic_rng_j,
              1e-6 * e.dynamic_rng_j);
  // No gating: no saving.
  const auto f = pm.estimate(32, 0, 1u << 20, 0.0, 1000, 200.0);
  EXPECT_DOUBLE_EQ(f.rng_gated_saving_j, 0.0);
}

TEST(PowerModel, StaticEnergyTracksDeviceAndTime) {
  const PowerModel pm;
  const auto short_run = pm.estimate(8, 0, 0, 0.0, 1000, 200.0);
  const auto long_run = pm.estimate(8, 0, 0, 0.0, 2000, 200.0);
  EXPECT_NEAR(long_run.static_j, 2.0 * short_run.static_j, 1e-12);
  const auto wide = pm.estimate(32, 0, 0, 0.0, 1000, 200.0);
  EXPECT_GT(wide.static_j, short_run.static_j);  // more LUTs leak more
}

TEST(GateProgram, CoreConfigTracksThePaperDesignPoints) {
  for (const std::size_t b : {8u, 16u, 32u}) {
    const CoreConfig cfg = CoreConfig::for_mac_width(b);
    EXPECT_EQ(cfg.cores, MacArchitecture{b}.cores()) << "b=" << b;
    EXPECT_EQ(cfg.and_latency, 3u);  // the FSM's 3-cycle stage timing
  }
}

TEST(GateProgram, DependencyChainTimingIsExact) {
  // Two dependent ANDs, 4 cores, latency 3: the second issues the
  // cycle the first's label lands (cycle 3), so the round is 6 cycles
  // with the two closed empty cycles counted as stalls.
  circuit::Circuit c;
  c.num_wires = 6;
  c.garbler_inputs = {2};
  c.evaluator_inputs = {3};
  c.gates.push_back({circuit::GateType::kAnd, 2, 3, 4});
  c.gates.push_back({circuit::GateType::kAnd, 4, 3, 5});
  c.outputs = {5};

  const GateProgramStats st = schedule_gate_program(c, CoreConfig{4, 3});
  EXPECT_EQ(st.and_gates, 2u);
  EXPECT_EQ(st.free_gates, 0u);
  EXPECT_EQ(st.cycles, 6u);
  EXPECT_EQ(st.stall_cycles, 2u);
  EXPECT_EQ(st.per_core_issues[0], 2u);  // both issue as first-in-cycle
}

TEST(GateProgram, AccountingInvariantsOnMacNetlists) {
  for (const std::size_t b : {8u, 16u, 32u}) {
    const circuit::Circuit c = circuit::optimize(
        circuit::make_mac_circuit(circuit::MacOptions{b, b, true}));
    const CoreConfig cfg = CoreConfig::for_mac_width(b);
    const GateProgramStats st = schedule_gate_program(c, cfg);
    EXPECT_EQ(st.cores, cfg.cores);
    EXPECT_EQ(st.and_gates + st.free_gates, c.gates.size());
    EXPECT_EQ(st.and_gates, c.and_count());
    EXPECT_EQ(std::accumulate(st.per_core_issues.begin(),
                              st.per_core_issues.end(), std::uint64_t{0}),
              st.and_gates);
    EXPECT_GT(st.utilization(), 0.0);
    EXPECT_LE(st.utilization(), 1.0);
    EXPECT_LE(st.stall_cycles, st.cycles);
    EXPECT_EQ(st.peak_live_wires, circuit::peak_live_wires(c));
    EXPECT_EQ(st.live_label_bytes(), st.peak_live_wires * 16);
    const auto per_core = st.per_core_utilization();
    ASSERT_EQ(per_core.size(), cfg.cores);
    // Round-robin fill: core 0 is the busiest, later cores no busier.
    for (std::size_t i = 1; i < per_core.size(); ++i)
      EXPECT_LE(per_core[i], per_core[i - 1]) << "core " << i;
  }
}

TEST(GateProgram, LocalityScheduleNeverSlowerOnMacs) {
  // The hwsim side of the bench gate: the reordered program must issue
  // at least as densely as the builder order at every paper width.
  for (const std::size_t b : {8u, 16u, 32u}) {
    const circuit::Circuit c = circuit::optimize(
        circuit::make_mac_circuit(circuit::MacOptions{b, b, true}));
    const circuit::Circuit s = circuit::schedule_for_locality(c);
    const CoreConfig cfg = CoreConfig::for_mac_width(b);
    const GateProgramStats before = schedule_gate_program(c, cfg);
    const GateProgramStats after = schedule_gate_program(s, cfg);
    EXPECT_LE(after.cycles, before.cycles) << "b=" << b;
    EXPECT_LE(after.stall_cycles, before.stall_cycles) << "b=" << b;
    EXPECT_GE(after.utilization(), before.utilization()) << "b=" << b;
    EXPECT_LE(after.peak_live_wires, before.peak_live_wires) << "b=" << b;
  }
}

TEST(GateProgram, SingleCoreSerializesTheAnds) {
  const circuit::Circuit c = circuit::optimize(
      circuit::make_mac_circuit(circuit::MacOptions{8, 8, true}));
  const GateProgramStats st = schedule_gate_program(c, CoreConfig{1, 3});
  ASSERT_EQ(st.per_core_issues.size(), 1u);
  EXPECT_EQ(st.per_core_issues[0], st.and_gates);
  EXPECT_GE(st.cycles, static_cast<std::uint64_t>(st.and_gates));
}

}  // namespace
}  // namespace maxel::hwsim
