// Broker integration tests: N parallel clients against one broker
// served from a disk spool, with every decoded MAC checked against the
// plaintext reference and the sequential net::Server path; typed
// overload/drain rejections; and a shutdown-latency bound (the accept
// poll must observe request_stop() promptly).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/demo_inputs.hpp"
#include "net/error.hpp"
#include "net/server.hpp"
#include "net/tcp_channel.hpp"
#include "svc/broker.hpp"

namespace maxel::svc {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spool_dir_ = fs::temp_directory_path() /
                 ("maxel_broker_test_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()) +
                  "_" + ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
    fs::remove_all(spool_dir_);
  }
  void TearDown() override { fs::remove_all(spool_dir_); }

  BrokerConfig quiet_config(std::size_t bits, std::size_t rounds) {
    BrokerConfig cfg;
    cfg.bind_addr = "127.0.0.1";
    cfg.port = 0;
    cfg.bits = bits;
    cfg.rounds_per_session = rounds;
    cfg.spool_dir = spool_dir_.string();
    cfg.accept_poll_ms = 50;
    cfg.verbose = false;
    cfg.tcp.recv_timeout_ms = 5'000;
    return cfg;
  }

  net::ClientConfig quiet_client(std::uint16_t port, std::size_t bits) {
    net::ClientConfig ccfg;
    ccfg.port = port;
    ccfg.bits = bits;
    ccfg.verbose = false;
    ccfg.tcp.recv_timeout_ms = 10'000;
    ccfg.tcp.connect_attempts = 5;
    ccfg.tcp.connect_backoff_ms = 20;
    return ccfg;
  }

  fs::path spool_dir_;
};

// The acceptance bar of this subsystem: >=4 concurrent loopback clients
// served from the disk spool, every decoded MAC bit-identical to the
// sequential single-connection server on the same demo inputs, and no
// session double-served (claims == sessions == clients).
TEST_F(BrokerTest, ConcurrentClientsMatchSequentialPathNoDoubleServe) {
  const std::size_t bits = 8, rounds = 6, clients = 6;

  // Sequential reference first: one session through net::Server.
  std::uint64_t sequential_mac = 0;
  {
    net::ServerConfig scfg;
    scfg.bind_addr = "127.0.0.1";
    scfg.port = 0;
    scfg.bits = bits;
    scfg.rounds_per_session = rounds;
    scfg.max_sessions = 1;
    scfg.accept_poll_ms = 50;
    scfg.verbose = false;
    net::Server server(scfg);
    std::thread serve([&] { server.serve(); });
    const net::ClientStats cs =
        net::run_client(quiet_client(server.port(), bits));
    serve.join();
    ASSERT_TRUE(cs.verified);
    sequential_mac = cs.output_value;
  }

  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 4;
  cfg.admission_queue = clients;
  cfg.spool_low_watermark = 2;
  cfg.spool_high_watermark = clients;
  cfg.max_sessions = clients;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  std::vector<net::ClientStats> results(clients);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients; ++i)
    threads.emplace_back([&, i] {
      results[i] = net::run_client(quiet_client(broker.port(), bits));
    });
  for (auto& t : threads) t.join();
  run.join();  // max_sessions reached -> graceful drain

  const std::uint64_t want =
      net::demo_mac_reference(cfg.demo_seed, bits, rounds);
  EXPECT_EQ(sequential_mac, want);
  for (std::size_t i = 0; i < clients; ++i) {
    EXPECT_TRUE(results[i].verified) << "client " << i;
    EXPECT_EQ(results[i].output_value, sequential_mac) << "client " << i;
    EXPECT_EQ(results[i].rounds, rounds) << "client " << i;
  }

  const BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.sessions_served, clients);
  EXPECT_EQ(st.server.rounds_served, clients * rounds);
  // Exactly one spool claim per served session: no double-serve.
  EXPECT_EQ(st.spool.sessions_claimed, clients);
  EXPECT_EQ(st.spool.cache_hits + st.spool.cache_misses, clients);
  EXPECT_EQ(st.server.connection_errors, 0u);
  EXPECT_EQ(st.admission_rejects, 0u);
  // Client-side byte counters must mirror the broker's, summed.
  std::uint64_t client_rx = 0, client_tx = 0;
  for (const auto& r : results) {
    client_rx += r.bytes_received;
    client_tx += r.bytes_sent;
  }
  EXPECT_EQ(client_rx, st.server.bytes_sent);
  EXPECT_EQ(client_tx, st.server.bytes_received);
}

// A full admission queue gets the typed kServerBusy verdict (retryable),
// and connections still queued at stop time get kShuttingDown.
TEST_F(BrokerTest, OverloadAndDrainSendTypedRejects) {
  const std::size_t bits = 8, rounds = 4;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 1;
  cfg.admission_queue = 1;
  cfg.tcp.recv_timeout_ms = 3'000;  // bounds the blocked worker below
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  const auto idle_connect = [&] {
    // Connects but never sends a hello: parks wherever the broker
    // puts it (worker handshake or admission queue).
    return net::TcpChannel::connect("127.0.0.1", broker.port(), cfg.tcp);
  };
  const auto settle = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  };

  auto blocker = idle_connect();  // occupies the single worker
  settle();
  auto queued = idle_connect();  // fills the admission queue
  settle();

  // Third connection: queue full, must be rejected before the hello.
  try {
    (void)net::run_client(quiet_client(broker.port(), bits));
    FAIL() << "expected kServerBusy rejection";
  } catch (const net::HandshakeError& e) {
    EXPECT_EQ(e.code(), net::RejectCode::kServerBusy);
    EXPECT_TRUE(net::reject_is_retryable(e.code()));
  }

  // Drain: stop first so the queued connection is popped as a drain
  // reject, then release the worker by hanging up the blocker.
  broker.request_stop();
  blocker.reset();
  const net::ServerAccept verdict = net::recv_accept(*queued);
  EXPECT_EQ(verdict.status, net::RejectCode::kShuttingDown);
  EXPECT_TRUE(net::reject_is_retryable(verdict.status));
  queued.reset();
  run.join();

  const BrokerStats st = broker.stats();
  EXPECT_EQ(st.admission_rejects, 1u);
  EXPECT_EQ(st.drain_rejects, 1u);
  EXPECT_EQ(st.server.sessions_served, 0u);
}

// request_stop() must be observed within the accept poll period, not a
// blocking accept(2): an idle broker drains in well under a second.
TEST_F(BrokerTest, ShutdownLatencyBoundedByAcceptPoll) {
  BrokerConfig cfg = quiet_config(8, 4);
  cfg.workers = 2;
  cfg.accept_poll_ms = 50;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = Clock::now();
  broker.request_stop();
  run.join();
  // Budget: one accept poll + one producer wait + worker joins, with
  // generous slack for slow CI machines; a blocking accept would hang
  // here until an external connection arrived.
  EXPECT_LT(seconds_since(t0), 2.0);
}

// Sessions survive a broker restart in the same spool directory: what
// the first broker spooled but never served is served by the second,
// and nothing is served twice across the lives.
TEST_F(BrokerTest, RestartServesLeftoverSpoolWithoutReuse) {
  const std::size_t bits = 8, rounds = 4;
  std::uint64_t first_spooled = 0, first_claimed = 0;
  {
    BrokerConfig cfg = quiet_config(bits, rounds);
    cfg.workers = 2;
    cfg.spool_low_watermark = 2;
    cfg.spool_high_watermark = 4;
    cfg.max_sessions = 1;
    Broker broker(cfg);
    std::thread run([&] { broker.run(); });
    const net::ClientStats cs =
        net::run_client(quiet_client(broker.port(), bits));
    run.join();
    EXPECT_TRUE(cs.verified);
    const BrokerStats st = broker.stats();
    first_spooled = st.spool.sessions_spooled;
    first_claimed = st.spool.sessions_claimed;
    ASSERT_GT(first_spooled, first_claimed) << "need leftovers to restart on";
  }
  // Second life, same directory: the leftover ready/ files are the
  // inventory; claimed/ leftovers (none here) would have been purged.
  {
    BrokerConfig cfg = quiet_config(bits, rounds);
    cfg.workers = 2;
    cfg.spool_low_watermark = 0;  // no refill: serve inherited stock only
    cfg.spool_high_watermark = 0;
    cfg.max_sessions = 1;
    Broker broker(cfg);
    EXPECT_EQ(broker.stats().spool.sessions_ready,
              first_spooled - first_claimed);
    std::thread run([&] { broker.run(); });
    const net::ClientStats cs =
        net::run_client(quiet_client(broker.port(), bits));
    run.join();
    EXPECT_TRUE(cs.verified);
    EXPECT_EQ(broker.stats().spool.sessions_spooled, 0u);  // inherited only
    EXPECT_EQ(broker.stats().spool.sessions_claimed, 1u);
  }
}

// Stream-mode clients bypass the spool entirely (garble-while-transfer
// serves them live) while precomputed clients keep drawing from it —
// mixed traffic against one broker, every MAC bit-identical.
TEST_F(BrokerTest, StreamSessionsBypassSpoolAndMatchPrecomputed) {
  const std::size_t bits = 8, rounds = 6;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 2;
  cfg.max_sessions = 2;
  cfg.spool_low_watermark = 1;
  cfg.spool_high_watermark = 2;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  net::ClientConfig pre = quiet_client(broker.port(), bits);
  const net::ClientStats ps = net::run_client(pre);

  net::ClientConfig str = quiet_client(broker.port(), bits);
  str.mode = net::SessionMode::kStream;
  const net::ClientStats ss = net::run_client(str);
  run.join();

  EXPECT_TRUE(ps.verified);
  EXPECT_TRUE(ss.verified);
  EXPECT_EQ(ss.output_value, ps.output_value);
  EXPECT_EQ(ss.output_value,
            net::demo_mac_reference(cfg.demo_seed, bits, rounds));
  EXPECT_GT(ss.chunks_received, 0u);

  const BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.sessions_served, 2u);
  EXPECT_EQ(st.server.stream_sessions_served, 1u);
  // Only the precomputed session claimed spool inventory.
  EXPECT_EQ(st.spool.sessions_claimed, 1u);

  MetricsRegistry& m = broker.metrics();
  EXPECT_EQ(m.counter("stream_sessions_served").value(), 1u);
  EXPECT_EQ(m.histogram("first_table_seconds").snapshot().count, 1u);
  EXPECT_GT(m.gauge("peak_resident_tables").value(), 0);
}

// A broker started with streaming disabled refuses the mode with the
// typed reject and keeps serving precomputed traffic.
TEST_F(BrokerTest, NoStreamBrokerRefusesStreamClients) {
  const std::size_t bits = 8, rounds = 4;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 1;
  cfg.max_sessions = 1;
  cfg.allow_stream = false;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  net::ClientConfig str = quiet_client(broker.port(), bits);
  str.mode = net::SessionMode::kStream;
  try {
    (void)net::run_client(str);
    FAIL() << "stream client accepted by a --no-stream broker";
  } catch (const net::HandshakeError& e) {
    EXPECT_EQ(e.code(), net::RejectCode::kBadMode);
  }

  const net::ClientStats cs =
      net::run_client(quiet_client(broker.port(), bits));
  run.join();
  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(broker.stats().server.stream_sessions_served, 0u);
}

// Broker metrics reflect the traffic that actually flowed.
TEST_F(BrokerTest, MetricsTrackServedSessions) {
  const std::size_t bits = 8, rounds = 4, clients = 2;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 2;
  cfg.max_sessions = clients;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients; ++i)
    threads.emplace_back(
        [&] { (void)net::run_client(quiet_client(broker.port(), bits)); });
  for (auto& t : threads) t.join();
  run.join();

  MetricsRegistry& m = broker.metrics();
  EXPECT_EQ(m.counter("sessions_served").value(), clients);
  EXPECT_EQ(m.counter("rounds_served").value(), clients * rounds);
  EXPECT_EQ(m.histogram("session_seconds").snapshot().count, clients);
  EXPECT_EQ(m.histogram("handshake_seconds").snapshot().count, clients);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"sessions_served\":2"), std::string::npos);
  EXPECT_NE(json.find("\"session_seconds\":{"), std::string::npos);
}

}  // namespace
}  // namespace maxel::svc
