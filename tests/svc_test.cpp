// Broker integration tests: N parallel clients against one broker
// served from a disk spool, with every decoded MAC checked against the
// plaintext reference and the sequential net::Server path; typed
// overload/drain rejections; and a shutdown-latency bound (the accept
// poll must observe request_stop() promptly).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "crypto/rng.hpp"
#include "net/client.hpp"
#include "net/demo_inputs.hpp"
#include "net/error.hpp"
#include "net/server.hpp"
#include "net/tcp_channel.hpp"
#include "net/v3_service.hpp"
#include "ot/pool.hpp"
#include "svc/broker.hpp"

namespace maxel::svc {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spool_dir_ = fs::temp_directory_path() /
                 ("maxel_broker_test_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()) +
                  "_" + ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
    fs::remove_all(spool_dir_);
  }
  void TearDown() override { fs::remove_all(spool_dir_); }

  BrokerConfig quiet_config(std::size_t bits, std::size_t rounds) {
    BrokerConfig cfg;
    cfg.bind_addr = "127.0.0.1";
    cfg.port = 0;
    cfg.bits = bits;
    cfg.rounds_per_session = rounds;
    cfg.spool_dir = spool_dir_.string();
    cfg.accept_poll_ms = 50;
    cfg.verbose = false;
    cfg.tcp.recv_timeout_ms = 5'000;
    return cfg;
  }

  net::ClientConfig quiet_client(std::uint16_t port, std::size_t bits) {
    net::ClientConfig ccfg;
    ccfg.port = port;
    ccfg.bits = bits;
    ccfg.verbose = false;
    ccfg.tcp.recv_timeout_ms = 10'000;
    ccfg.tcp.connect_attempts = 5;
    ccfg.tcp.connect_backoff_ms = 20;
    return ccfg;
  }

  fs::path spool_dir_;
};

// The acceptance bar of this subsystem: >=4 concurrent loopback clients
// served from the disk spool, every decoded MAC bit-identical to the
// sequential single-connection server on the same demo inputs, and no
// session double-served (claims == sessions == clients).
TEST_F(BrokerTest, ConcurrentClientsMatchSequentialPathNoDoubleServe) {
  const std::size_t bits = 8, rounds = 6, clients = 6;

  // Sequential reference first: one session through net::Server.
  std::uint64_t sequential_mac = 0;
  {
    net::ServerConfig scfg;
    scfg.bind_addr = "127.0.0.1";
    scfg.port = 0;
    scfg.bits = bits;
    scfg.rounds_per_session = rounds;
    scfg.max_sessions = 1;
    scfg.accept_poll_ms = 50;
    scfg.verbose = false;
    net::Server server(scfg);
    std::thread serve([&] { server.serve(); });
    const net::ClientStats cs =
        net::run_client(quiet_client(server.port(), bits));
    serve.join();
    ASSERT_TRUE(cs.verified);
    sequential_mac = cs.output_value;
  }

  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 4;
  cfg.admission_queue = clients;
  cfg.spool_low_watermark = 2;
  cfg.spool_high_watermark = clients;
  cfg.max_sessions = clients;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  std::vector<net::ClientStats> results(clients);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients; ++i)
    threads.emplace_back([&, i] {
      results[i] = net::run_client(quiet_client(broker.port(), bits));
    });
  for (auto& t : threads) t.join();
  run.join();  // max_sessions reached -> graceful drain

  const std::uint64_t want =
      net::demo_mac_reference(cfg.demo_seed, bits, rounds);
  EXPECT_EQ(sequential_mac, want);
  for (std::size_t i = 0; i < clients; ++i) {
    EXPECT_TRUE(results[i].verified) << "client " << i;
    EXPECT_EQ(results[i].output_value, sequential_mac) << "client " << i;
    EXPECT_EQ(results[i].rounds, rounds) << "client " << i;
  }

  const BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.sessions_served, clients);
  EXPECT_EQ(st.server.rounds_served, clients * rounds);
  // Exactly one spool claim per served session: no double-serve.
  EXPECT_EQ(st.spool.sessions_claimed, clients);
  EXPECT_EQ(st.spool.cache_hits + st.spool.cache_misses, clients);
  EXPECT_EQ(st.server.connection_errors, 0u);
  EXPECT_EQ(st.admission_rejects, 0u);
  // Client-side byte counters must mirror the broker's, summed.
  std::uint64_t client_rx = 0, client_tx = 0;
  for (const auto& r : results) {
    client_rx += r.bytes_received;
    client_tx += r.bytes_sent;
  }
  EXPECT_EQ(client_rx, st.server.bytes_sent);
  EXPECT_EQ(client_tx, st.server.bytes_received);
}

// A full admission queue gets the typed kServerBusy verdict (retryable),
// and connections still queued at stop time get kShuttingDown.
TEST_F(BrokerTest, OverloadAndDrainSendTypedRejects) {
  const std::size_t bits = 8, rounds = 4;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 1;
  cfg.admission_queue = 1;
  cfg.tcp.recv_timeout_ms = 3'000;  // bounds the blocked worker below
  // This test's short settles race the producer's startup burst; keep
  // the burst to the v2 lane only (v3 plays no part in admission/drain
  // verdicts) so sanitizer builds don't blow the timing margin.
  cfg.allow_v3 = false;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  const auto idle_connect = [&] {
    // Connects but never sends a hello: parks wherever the broker
    // puts it (worker handshake or admission queue).
    return net::TcpChannel::connect("127.0.0.1", broker.port(), cfg.tcp);
  };
  const auto settle = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  };

  auto blocker = idle_connect();  // occupies the single worker
  settle();
  auto queued = idle_connect();  // fills the admission queue
  settle();

  // Third connection: queue full, must be rejected before the hello
  // with a typed verdict — reject_connection lingers for the client's
  // EOF so the verdict can't be reset away despite the unread hello.
  try {
    (void)net::run_client(quiet_client(broker.port(), bits));
    ADD_FAILURE() << "expected kServerBusy rejection";
  } catch (const net::HandshakeError& e) {
    EXPECT_EQ(e.code(), net::RejectCode::kServerBusy);
    EXPECT_TRUE(net::reject_is_retryable(e.code()));
  } catch (const net::NetError& e) {
    // A bare transport error here means the typed verdict was lost
    // (the close-with-unread-hello reset race). Fail non-fatally: a
    // fatal assert would unwind past the joinable broker thread below
    // and turn the diagnostic into std::terminate.
    ADD_FAILURE() << "expected a typed busy reject, got: " << e.what();
  }

  // Drain: stop first so the queued connection is popped as a drain
  // reject, then release the worker by hanging up the blocker.
  broker.request_stop();
  blocker.reset();
  const net::ServerAccept verdict = net::recv_accept(*queued);
  EXPECT_EQ(verdict.status, net::RejectCode::kShuttingDown);
  EXPECT_TRUE(net::reject_is_retryable(verdict.status));
  queued.reset();
  run.join();

  const BrokerStats st = broker.stats();
  EXPECT_EQ(st.admission_rejects, 1u);
  EXPECT_EQ(st.drain_rejects, 1u);
  EXPECT_EQ(st.server.sessions_served, 0u);
}

// request_stop() must be observed within the accept poll period, not a
// blocking accept(2): an idle broker drains in well under a second.
TEST_F(BrokerTest, ShutdownLatencyBoundedByAcceptPoll) {
  BrokerConfig cfg = quiet_config(8, 4);
  cfg.workers = 2;
  cfg.accept_poll_ms = 50;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = Clock::now();
  broker.request_stop();
  run.join();
  // Budget: one accept poll + one producer wait + worker joins, with
  // generous slack for slow CI machines; a blocking accept would hang
  // here until an external connection arrived.
  EXPECT_LT(seconds_since(t0), 2.0);
}

// Sessions survive a broker restart in the same spool directory: what
// the first broker spooled but never served is served by the second,
// and nothing is served twice across the lives.
TEST_F(BrokerTest, RestartServesLeftoverSpoolWithoutReuse) {
  const std::size_t bits = 8, rounds = 4;
  std::uint64_t first_spooled = 0, first_claimed = 0;
  {
    BrokerConfig cfg = quiet_config(bits, rounds);
    cfg.workers = 2;
    cfg.spool_low_watermark = 2;
    cfg.spool_high_watermark = 4;
    cfg.max_sessions = 1;
    Broker broker(cfg);
    std::thread run([&] { broker.run(); });
    const net::ClientStats cs =
        net::run_client(quiet_client(broker.port(), bits));
    run.join();
    EXPECT_TRUE(cs.verified);
    const BrokerStats st = broker.stats();
    first_spooled = st.spool.sessions_spooled;
    first_claimed = st.spool.sessions_claimed;
    ASSERT_GT(first_spooled, first_claimed) << "need leftovers to restart on";
  }
  // Second life, same directory: the leftover ready/ files are the
  // inventory; claimed/ leftovers (none here) would have been purged.
  {
    BrokerConfig cfg = quiet_config(bits, rounds);
    cfg.workers = 2;
    cfg.spool_low_watermark = 0;  // no refill: serve inherited stock only
    cfg.spool_high_watermark = 0;
    cfg.max_sessions = 1;
    Broker broker(cfg);
    EXPECT_EQ(broker.stats().spool.sessions_ready,
              first_spooled - first_claimed);
    std::thread run([&] { broker.run(); });
    const net::ClientStats cs =
        net::run_client(quiet_client(broker.port(), bits));
    run.join();
    EXPECT_TRUE(cs.verified);
    EXPECT_EQ(broker.stats().spool.sessions_spooled, 0u);  // inherited only
    EXPECT_EQ(broker.stats().spool.sessions_claimed, 1u);
  }
}

// Stream-mode clients bypass the spool entirely (garble-while-transfer
// serves them live) while precomputed clients keep drawing from it —
// mixed traffic against one broker, every MAC bit-identical.
TEST_F(BrokerTest, StreamSessionsBypassSpoolAndMatchPrecomputed) {
  const std::size_t bits = 8, rounds = 6;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 2;
  cfg.max_sessions = 2;
  cfg.spool_low_watermark = 1;
  cfg.spool_high_watermark = 2;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  net::ClientConfig pre = quiet_client(broker.port(), bits);
  const net::ClientStats ps = net::run_client(pre);

  net::ClientConfig str = quiet_client(broker.port(), bits);
  str.mode = net::SessionMode::kStream;
  const net::ClientStats ss = net::run_client(str);
  run.join();

  EXPECT_TRUE(ps.verified);
  EXPECT_TRUE(ss.verified);
  EXPECT_EQ(ss.output_value, ps.output_value);
  EXPECT_EQ(ss.output_value,
            net::demo_mac_reference(cfg.demo_seed, bits, rounds));
  EXPECT_GT(ss.chunks_received, 0u);

  const BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.sessions_served, 2u);
  EXPECT_EQ(st.server.stream_sessions_served, 1u);
  // Only the precomputed session claimed spool inventory.
  EXPECT_EQ(st.spool.sessions_claimed, 1u);

  MetricsRegistry& m = broker.metrics();
  EXPECT_EQ(m.counter("stream_sessions_served").value(), 1u);
  EXPECT_EQ(m.histogram("first_table_seconds").snapshot().count, 1u);
  EXPECT_GT(m.gauge("peak_resident_tables").value(), 0);
}

// A broker started with streaming disabled refuses the mode with the
// typed reject and keeps serving precomputed traffic.
TEST_F(BrokerTest, NoStreamBrokerRefusesStreamClients) {
  const std::size_t bits = 8, rounds = 4;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 1;
  cfg.max_sessions = 1;
  cfg.allow_stream = false;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  net::ClientConfig str = quiet_client(broker.port(), bits);
  str.mode = net::SessionMode::kStream;
  try {
    (void)net::run_client(str);
    FAIL() << "stream client accepted by a --no-stream broker";
  } catch (const net::HandshakeError& e) {
    EXPECT_EQ(e.code(), net::RejectCode::kBadMode);
  }

  const net::ClientStats cs =
      net::run_client(quiet_client(broker.port(), bits));
  run.join();
  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(broker.stats().server.stream_sessions_served, 0u);
}

// Broker metrics reflect the traffic that actually flowed.
TEST_F(BrokerTest, MetricsTrackServedSessions) {
  const std::size_t bits = 8, rounds = 4, clients = 2;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 2;
  cfg.max_sessions = clients;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients; ++i)
    threads.emplace_back(
        [&] { (void)net::run_client(quiet_client(broker.port(), bits)); });
  for (auto& t : threads) t.join();
  run.join();

  MetricsRegistry& m = broker.metrics();
  EXPECT_EQ(m.counter("sessions_served").value(), clients);
  EXPECT_EQ(m.counter("rounds_served").value(), clients * rounds);
  EXPECT_EQ(m.histogram("session_seconds").snapshot().count, clients);
  EXPECT_EQ(m.histogram("handshake_seconds").snapshot().count, clients);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"sessions_served\":2"), std::string::npos);
  EXPECT_NE(json.find("\"session_seconds\":{"), std::string::npos);
}

// --- Protocol v3 against the broker --------------------------------------

// One v3 client reconnecting three times: the first session pays the
// base OT and one extension batch, the rest resume the pool — setup
// bytes collapse by >=10x, every MAC still matches the reference, and
// all sessions drain from the spool's v3 lane (the v2 lane is never
// touched).
TEST_F(BrokerTest, V3ClientsAmortizeBaseOtAcrossBrokerSessions) {
  const std::size_t bits = 8, rounds = 6, sessions = 3;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 2;
  cfg.max_sessions = sessions;
  cfg.spool_low_watermark = 1;
  cfg.spool_high_watermark = 4;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  crypto::SystemRandom id_rng;
  auto state = net::make_v3_client_state(id_rng);
  std::vector<net::ClientStats> rs;
  for (std::size_t i = 0; i < sessions; ++i) {
    net::ClientConfig ccfg = quiet_client(broker.port(), bits);
    ccfg.protocol = net::kProtocolVersionV3;
    ccfg.v3_state = state;
    rs.push_back(net::run_client(ccfg));
  }
  run.join();

  const std::uint64_t want =
      net::demo_mac_reference(cfg.demo_seed, bits, rounds);
  for (std::size_t i = 0; i < sessions; ++i) {
    EXPECT_TRUE(rs[i].verified) << "session " << i;
    EXPECT_EQ(rs[i].output_value, want) << "session " << i;
    EXPECT_EQ(rs[i].protocol_used, net::kProtocolVersionV3) << "session " << i;
  }
  EXPECT_FALSE(rs[0].pool_resumed);
  EXPECT_TRUE(rs[1].pool_resumed);
  EXPECT_TRUE(rs[2].pool_resumed);
  EXPECT_LE(rs[1].setup_bytes * 10, rs[0].setup_bytes);
  EXPECT_LE(rs[2].setup_bytes * 10, rs[0].setup_bytes);

  const BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.sessions_served, sessions);
  EXPECT_EQ(st.server.v3_sessions_served, sessions);
  EXPECT_EQ(st.server.v3_fresh_pools, 1u);
  EXPECT_EQ(st.server.v3_ot_extended, ot::kPoolExtendBatch);
  EXPECT_EQ(st.spool.v3_claimed, sessions);
  EXPECT_EQ(st.spool.sessions_claimed, 0u);
  EXPECT_EQ(st.spool.v3_lineage_discarded, 0u);
  EXPECT_EQ(broker.v3_outstanding_claims(), 0u);

  MetricsRegistry& m = broker.metrics();
  EXPECT_EQ(m.counter("v3_sessions_served").value(),
            static_cast<std::int64_t>(sessions));
  EXPECT_GT(m.counter("net_tx_bytes_v3").value(), 0);
  EXPECT_GT(m.counter("net_rx_bytes_v3").value(), 0);
  EXPECT_NE(m.to_json().find("net_tx_bytes_v3"), std::string::npos);
}

// Mixed concurrent traffic: v3 clients (each with its own identity and
// pool) interleaved with v2 clients on a multi-worker broker. Every MAC
// matches, each lane's claims match its session count, and no OT-pool
// claim is left outstanding.
TEST_F(BrokerTest, MixedV2V3ConcurrentClientsKeepLanesSeparate) {
  const std::size_t bits = 8, rounds = 4, v3_clients = 3, v2_clients = 2;
  const std::size_t clients = v3_clients + v2_clients;
  BrokerConfig cfg = quiet_config(bits, rounds);
  cfg.workers = 4;
  cfg.admission_queue = clients;
  cfg.max_sessions = clients;
  cfg.spool_low_watermark = 1;
  cfg.spool_high_watermark = clients;
  Broker broker(cfg);
  std::thread run([&] { broker.run(); });

  std::vector<net::ClientStats> results(clients);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients; ++i)
    threads.emplace_back([&, i] {
      net::ClientConfig ccfg = quiet_client(broker.port(), bits);
      if (i < v3_clients) {
        crypto::SystemRandom id_rng;
        ccfg.protocol = net::kProtocolVersionV3;
        ccfg.v3_state = net::make_v3_client_state(id_rng);
      }
      results[i] = net::run_client(ccfg);
    });
  for (auto& t : threads) t.join();
  run.join();

  const std::uint64_t want =
      net::demo_mac_reference(cfg.demo_seed, bits, rounds);
  for (std::size_t i = 0; i < clients; ++i) {
    EXPECT_TRUE(results[i].verified) << "client " << i;
    EXPECT_EQ(results[i].output_value, want) << "client " << i;
    EXPECT_EQ(results[i].protocol_used,
              i < v3_clients ? net::kProtocolVersionV3 : net::kProtocolVersion)
        << "client " << i;
  }

  const BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.sessions_served, clients);
  EXPECT_EQ(st.server.v3_sessions_served, v3_clients);
  EXPECT_EQ(st.server.v3_fresh_pools, v3_clients);  // distinct identities
  EXPECT_EQ(st.spool.v3_claimed, v3_clients);
  EXPECT_EQ(st.spool.sessions_claimed, v2_clients);
  EXPECT_EQ(st.server.connection_errors, 0u);
  EXPECT_EQ(broker.v3_outstanding_claims(), 0u);

  MetricsRegistry& m = broker.metrics();
  EXPECT_GT(m.counter("net_tx_bytes_v3").value(), 0);
  EXPECT_GT(m.counter("net_tx_bytes_precomputed").value(), 0);
}

// A v3 session is only servable under the garbling delta it was spooled
// with, and that delta dies with the broker process. On restart in the
// same spool directory, the inherited v3 inventory's recorded lineage
// no longer matches the new registry: take_v3 must burn it (claim and
// destroy, never serve) and fresh sessions must take over.
TEST_F(BrokerTest, RestartBurnsForeignLineageV3SessionsInsteadOfServing) {
  const std::size_t bits = 8, rounds = 4;
  std::uint64_t first_v3_leftover = 0;
  {
    BrokerConfig cfg = quiet_config(bits, rounds);
    cfg.workers = 2;
    cfg.spool_low_watermark = 1;
    cfg.spool_high_watermark = 4;
    cfg.max_sessions = 1;
    Broker broker(cfg);
    std::thread run([&] { broker.run(); });
    net::ClientConfig ccfg = quiet_client(broker.port(), bits);
    ccfg.protocol = net::kProtocolVersionV3;
    const net::ClientStats cs = net::run_client(ccfg);
    run.join();
    EXPECT_TRUE(cs.verified);
    const BrokerStats st = broker.stats();
    EXPECT_EQ(st.spool.v3_claimed, 1u);
    first_v3_leftover = st.spool.v3_spooled - st.spool.v3_claimed;
    ASSERT_GT(first_v3_leftover, 0u) << "need stale v3 stock to restart on";
  }
  {
    BrokerConfig cfg = quiet_config(bits, rounds);
    cfg.workers = 2;
    cfg.spool_low_watermark = 1;
    cfg.spool_high_watermark = 2;
    cfg.max_sessions = 1;
    Broker broker(cfg);  // fresh delta: inherited v3 lineage is foreign
    EXPECT_EQ(broker.stats().spool.sessions_ready_v3, first_v3_leftover);
    std::thread run([&] { broker.run(); });
    net::ClientConfig ccfg = quiet_client(broker.port(), bits);
    ccfg.protocol = net::kProtocolVersionV3;
    const net::ClientStats cs = net::run_client(ccfg);
    run.join();
    EXPECT_TRUE(cs.verified);
    const BrokerStats st = broker.stats();
    // Every inherited session was burned, none served; the session that
    // did flow came from freshly garbled same-lineage stock.
    EXPECT_EQ(st.spool.v3_lineage_discarded, first_v3_leftover);
    EXPECT_EQ(st.spool.v3_claimed, 1u);
    EXPECT_EQ(st.server.v3_sessions_served, 1u);
    EXPECT_EQ(broker.v3_outstanding_claims(), 0u);
  }
}

}  // namespace
}  // namespace maxel::svc
