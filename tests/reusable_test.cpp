// Reusable (CRGC-style) garbling unit tests: the masked-table artifact
// must reproduce the plaintext reference bit-for-bit across rounds and
// sessions, off a single construction.
#include "gc/reusable.hpp"

#include <gtest/gtest.h>

#include "circuit/circuits.hpp"
#include "crypto/rng.hpp"

namespace maxel {
namespace {

std::vector<bool> to_bits(std::uint64_t v, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = ((v >> i) & 1u) != 0;
  return bits;
}

std::uint64_t from_bits(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) v |= 1ull << i;
  return v;
}

std::vector<bool> mask_bits(const std::vector<bool>& v,
                            const std::vector<bool>& r) {
  std::vector<bool> o(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) o[i] = v[i] != r[i];
  return o;
}

TEST(ReusableAnalysis, ClassifiesEveryGateExactlyOnce) {
  const auto c = circuit::make_mac_circuit({.bit_width = 8});
  const auto an = gc::analyze_reusable(c);
  ASSERT_EQ(an.cls.size(), c.gates.size());
  EXPECT_EQ(an.n_public + an.n_free + an.n_tables, c.gates.size());
  EXPECT_GT(an.n_tables, 0u);  // the multiplier is not XOR-only
  EXPECT_EQ(an.table_bytes(), (an.n_tables + 1) / 2);
  // Constant wires are public with their defined values.
  EXPECT_TRUE(an.pub[circuit::kConstZero]);
  EXPECT_TRUE(an.pub[circuit::kConstOne]);
  EXPECT_FALSE(an.pub_val[circuit::kConstZero]);
  EXPECT_TRUE(an.pub_val[circuit::kConstOne]);
  // Inputs are never public.
  for (const auto w : c.garbler_inputs) EXPECT_FALSE(an.pub[w]);
  for (const auto w : c.evaluator_inputs) EXPECT_FALSE(an.pub[w]);
}

TEST(ReusableMac, MatchesSequentialPlainReference) {
  for (const std::size_t bits : {4u, 8u, 16u}) {
    const circuit::MacOptions opt{.bit_width = bits};
    const auto c = circuit::make_mac_circuit(opt);
    crypto::SystemRandom rng(crypto::Block{7, static_cast<std::uint64_t>(bits)});
    const auto rc = gc::make_reusable_circuit(c, rng);
    gc::ReusableEvaluator ev(c, rc.view);

    crypto::SystemRandom inputs(crypto::Block{21, 42});
    const std::uint64_t mask = bits == 64 ? ~0ull : ((1ull << bits) - 1);
    std::vector<circuit::RoundInputs> rounds;
    std::vector<bool> decoded;
    for (int r = 0; r < 9; ++r) {
      const std::uint64_t a = inputs.next_u64() & mask;
      const std::uint64_t x = inputs.next_u64() & mask;
      rounds.push_back({to_bits(a, bits), to_bits(x, bits)});
      decoded = ev.eval_round(
          mask_bits(rounds.back().garbler_bits, rc.garbler_flips),
          mask_bits(rounds.back().evaluator_bits, rc.evaluator_flips));
      const auto ref = circuit::eval_sequential_plain(c, rounds);
      EXPECT_EQ(from_bits(decoded), from_bits(ref))
          << "bits=" << bits << " round=" << r;
    }
  }
}

TEST(ReusableMac, ResetReplaysManySessionsOffOneArtifact) {
  const circuit::MacOptions opt{.bit_width = 8};
  const auto c = circuit::make_mac_circuit(opt);
  crypto::SystemRandom rng(crypto::Block{3, 4});
  const auto rc = gc::make_reusable_circuit(c, rng);
  gc::ReusableEvaluator ev(c, rc.view);

  crypto::SystemRandom inputs(crypto::Block{5, 6});
  for (int session = 0; session < 20; ++session) {
    ev.reset();
    EXPECT_EQ(ev.rounds_evaluated(), 0u);
    std::vector<circuit::RoundInputs> rounds;
    std::vector<bool> decoded;
    for (int r = 0; r < 5; ++r) {
      rounds.push_back({to_bits(inputs.next_u64() & 0xff, 8),
                        to_bits(inputs.next_u64() & 0xff, 8)});
      decoded = ev.eval_round(
          mask_bits(rounds.back().garbler_bits, rc.garbler_flips),
          mask_bits(rounds.back().evaluator_bits, rc.evaluator_flips));
    }
    EXPECT_EQ(from_bits(decoded),
              from_bits(circuit::eval_sequential_plain(c, rounds)))
        << "session=" << session;
  }
}

TEST(ReusableCombinational, MillionairesMatchesEvalPlain) {
  const auto c = circuit::make_millionaires_circuit(8);
  crypto::SystemRandom rng(crypto::Block{11, 12});
  const auto rc = gc::make_reusable_circuit(c, rng);
  gc::ReusableEvaluator ev(c, rc.view);
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b) {
      ev.reset();
      const auto ga = to_bits(a * 17, 8);
      const auto gb = to_bits(b * 13, 8);
      const auto got = ev.eval_round(mask_bits(ga, rc.garbler_flips),
                                     mask_bits(gb, rc.evaluator_flips));
      const auto ref = circuit::eval_plain(c, ga, gb);
      EXPECT_EQ(got, ref) << "a=" << a << " b=" << b;
    }
}

TEST(ReusableConstruction, FreshRandomnessChangesTheTables) {
  const auto c = circuit::make_mac_circuit({.bit_width = 8});
  crypto::SystemRandom rng1(crypto::Block{1, 1});
  crypto::SystemRandom rng2(crypto::Block{2, 2});
  const auto rc1 = gc::make_reusable_circuit(c, rng1);
  const auto rc2 = gc::make_reusable_circuit(c, rng2);
  EXPECT_NE(rc1.view.tables, rc2.view.tables);
  // Same seed replays the same artifact (spool determinism is not
  // required, but the construction itself must be a pure function of
  // the rng stream).
  crypto::SystemRandom rng1b(crypto::Block{1, 1});
  const auto rc1b = gc::make_reusable_circuit(c, rng1b);
  EXPECT_EQ(rc1.view.tables, rc1b.view.tables);
  EXPECT_EQ(rc1.garbler_flips, rc1b.garbler_flips);
}

TEST(ReusableEvaluator, RejectsShapeMismatches) {
  const auto c = circuit::make_mac_circuit({.bit_width = 8});
  crypto::SystemRandom rng(crypto::Block{9, 9});
  const auto rc = gc::make_reusable_circuit(c, rng);

  auto bad = rc.view;
  bad.n_gates += 1;
  EXPECT_THROW(gc::ReusableEvaluator(c, bad), std::invalid_argument);

  bad = rc.view;
  bad.tables.pop_back();
  EXPECT_THROW(gc::ReusableEvaluator(c, bad), std::invalid_argument);

  bad = rc.view;
  bad.output_flips.pop_back();
  EXPECT_THROW(gc::ReusableEvaluator(c, bad), std::invalid_argument);

  bad = rc.view;
  bad.dff_corrections.push_back(false);
  EXPECT_THROW(gc::ReusableEvaluator(c, bad), std::invalid_argument);

  gc::ReusableEvaluator ev(c, rc.view);
  EXPECT_THROW(ev.eval_round({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace maxel
