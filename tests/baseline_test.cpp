// Baseline tests: the measured TinyGarble-style software framework and
// the FPGA-overlay analytic model that form Table 2's comparison columns.
#include <gtest/gtest.h>

#include "baseline/garbledcpu.hpp"
#include "baseline/overlay.hpp"
#include "baseline/overlay_sim.hpp"
#include "circuit/arith_ext.hpp"
#include "circuit/circuits.hpp"
#include "baseline/tinygarble.hpp"

namespace maxel::baseline {
namespace {

TEST(SoftwareMac, MeasurementIsSane) {
  const SoftwareMacResult r = measure_software_mac(8, 50);
  EXPECT_EQ(r.rounds, 50u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.time_per_mac_us(), 0.0);
  EXPECT_GT(r.macs_per_sec(), 0.0);
  EXPECT_GT(r.ands_per_mac, 0u);
  EXPECT_DOUBLE_EQ(r.macs_per_sec(), r.macs_per_sec_per_core());
}

TEST(SoftwareMac, ThroughputDropsWithBitWidth) {
  // MAC AND-count grows ~quadratically, so per-MAC time must grow
  // steeply from b=8 to b=32 (the paper sees ~15x).
  const SoftwareMacResult r8 = measure_software_mac(8, 200);
  const SoftwareMacResult r32 = measure_software_mac(32, 40);
  EXPECT_GT(r32.time_per_mac_us(), 4.0 * r8.time_per_mac_us());
  EXPECT_GT(r32.ands_per_mac, 8 * r8.ands_per_mac);
}

TEST(SoftwareMac, SerialNetlistMatchesTinyGarbleStructure) {
  const SoftwareMacResult r = measure_software_mac(8, 5);
  // Serial signed 8-bit MAC: pp + adders + sign handling + accumulator.
  circuit::MacOptions opt{8, 8, true, circuit::Builder::MulStructure::kSerial};
  EXPECT_EQ(r.ands_per_mac, circuit::make_mac_circuit(opt).and_count());
}

TEST(SoftwareMac, SchemeAffectsOnlyTableSizeNotCorrectness) {
  SoftwareMacOptions grr3;
  grr3.scheme = gc::Scheme::kGrr3;
  const SoftwareMacResult r = measure_software_mac(8, 20, grr3);
  EXPECT_EQ(r.rounds, 20u);
  EXPECT_GT(r.macs_per_sec(), 0.0);
}

TEST(PaperTinyGarble, PublishedNumbers) {
  EXPECT_EQ(paper_tinygarble(8).clock_cycles_per_mac, 144000u);
  EXPECT_DOUBLE_EQ(paper_tinygarble(16).time_per_mac_us, 160.35);
  EXPECT_DOUBLE_EQ(paper_tinygarble(32).throughput_mac_per_sec, 1.52e3);
  EXPECT_THROW((void)paper_tinygarble(64), std::invalid_argument);
}

TEST(Overlay, AnchorsMatchPaper) {
  const OverlayModel m;
  EXPECT_DOUBLE_EQ(m.cycles_per_mac(8), 4.4e3);
  EXPECT_DOUBLE_EQ(m.cycles_per_mac(16), 1.2e4);
  EXPECT_DOUBLE_EQ(m.cycles_per_mac(32), 3.6e4);
  EXPECT_DOUBLE_EQ(m.time_per_mac_us(8), 22.0);
  EXPECT_DOUBLE_EQ(m.time_per_mac_us(32), 180.0);
}

TEST(Overlay, InterpolationIsMonotonic) {
  const OverlayModel m;
  double prev = 0.0;
  for (std::size_t b = 4; b <= 64; b += 4) {
    const double c = m.cycles_per_mac(b);
    EXPECT_GT(c, prev) << "b=" << b;
    prev = c;
  }
  EXPECT_THROW((void)m.cycles_per_mac(2), std::invalid_argument);
}

TEST(Overlay, ThroughputMatchesTable2) {
  const OverlayModel m;
  // Aggregate: 4.55e4 / 1.67e4 / 5.56e3 MAC/s.
  EXPECT_NEAR(m.macs_per_sec(8), 4.55e4, 0.02e4);
  EXPECT_NEAR(m.macs_per_sec(16), 1.67e4, 0.02e4);
  EXPECT_NEAR(m.macs_per_sec(32), 5.56e3, 0.02e3);
  // Per-core: 1.06e3 / 3.88e2 / 1.29e2 MAC/s.
  EXPECT_NEAR(m.macs_per_sec_per_core(8), 1.06e3, 0.02e3);
  EXPECT_NEAR(m.macs_per_sec_per_core(16), 3.88e2, 0.1e2);
  EXPECT_NEAR(m.macs_per_sec_per_core(32), 1.29e2, 0.03e2);
}

TEST(Overlay, PerCoreSlowerThanSoftware) {
  // The paper's striking point: per core, the generic overlay is slower
  // than good software GC (985x vs 44x gap at b=8).
  const OverlayModel m;
  EXPECT_LT(m.macs_per_sec_per_core(8),
            paper_tinygarble(8).throughput_mac_per_sec);
}



TEST(SoftwareEvaluation, FasterThanGarbling) {
  // Evaluation needs ~half the hash calls of garbling (half gates: 2 vs
  // 4 per AND); the evaluator should be at least as fast.
  const SoftwareMacResult g = measure_software_mac(16, 120);
  const SoftwareMacResult e = measure_software_evaluation(16, 120);
  EXPECT_EQ(e.rounds, 120u);
  EXPECT_GT(e.macs_per_sec(), 0.8 * g.macs_per_sec());
}


TEST(OverlaySim, ReproducesAnchorsAfterCalibration) {
  const OverlaySim sim;
  const OverlayModel anchors;
  // Two structural parameters against three anchors: an exact fit is
  // impossible; within 10% everywhere is a good structural explanation
  // (fitted: ~5.5 cycles/interpreted gate, ~426 cycles/garbling wave —
  // consistent with a SHA-1-based garbling core).
  for (const std::size_t b : {8u, 16u, 32u}) {
    EXPECT_NEAR(sim.cycles_per_mac(b), anchors.cycles_per_mac(b),
                0.10 * anchors.cycles_per_mac(b))
        << "b=" << b;
  }
  EXPECT_GT(sim.alpha(), 0.0);  // per-gate interpretation cost
  EXPECT_GT(sim.beta(), 0.0);   // per-wave garbling cost
}

TEST(OverlaySim, PredictsForArbitraryNetlists) {
  const OverlaySim sim;
  // A divider is costlier than a comparator on the overlay too.
  const auto div = circuit::make_divider_circuit(16);
  const auto cmp = circuit::make_millionaires_circuit(16);
  EXPECT_GT(sim.cycles(div), sim.cycles(cmp));
  // And cost grows with the netlist, never negative.
  EXPECT_GT(sim.cycles(cmp), 0.0);
}

TEST(OverlaySim, FeaturesCountWavesCorrectly) {
  // 50 independent ANDs at one level on 43 cores: 2 waves.
  circuit::Builder bld;
  const auto a = bld.garbler_inputs(50);
  const auto b = bld.evaluator_inputs(50);
  circuit::Bus out(50);
  for (int i = 0; i < 50; ++i) out[static_cast<std::size_t>(i)] =
      bld.and_(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
  bld.set_outputs(out);
  const auto f = overlay_features(bld.take(), 43);
  EXPECT_DOUBLE_EQ(f.garbling_waves, 2.0);
  EXPECT_DOUBLE_EQ(f.total_gates, 50.0);
}

TEST(GarbledCpu, EstimateBracketsPaperClaim) {
  // Sec. 5.4: "We estimate at least 37x improvement over [13] in
  // throughput per core." MAXelerator b=32 per-core is 8.68e4 MAC/s;
  // the raw/clock-normalized GarbledCPU estimates must bracket 37x.
  const auto e = estimate_garbledcpu(32);
  EXPECT_DOUBLE_EQ(e.macs_per_sec_raw, 2.0 * 1.52e3);
  EXPECT_LT(e.macs_per_sec_normalized, e.macs_per_sec_raw);
  const double per_core_max = 8.68e4;
  const double lo = per_core_max / e.macs_per_sec_raw;
  const double hi = per_core_max / e.macs_per_sec_normalized;
  EXPECT_LT(lo, 37.0);
  EXPECT_GT(hi, 37.0);
}

}  // namespace
}  // namespace maxel::baseline
