// Event-loop serving tier tests.
//
//   * state machine: every session mode (precomputed, stream, v3,
//     reusable) driven through an EvSession fed ONE BYTE AT A TIME by a
//     shuttle server — the harshest readiness schedule an event loop
//     can deliver — against the real net::run_client, every MAC checked
//     against the plaintext reference;
//   * pool gate: a second v3 session through the shuttle resumes the
//     first one's OT pool and leaves zero outstanding claims;
//   * EvBroker: all four modes over loopback TCP against the sharded
//     front, with the blocking broker's stats/metrics semantics;
//   * idle eviction: a silent peer is evicted by the timer wheel and
//     counted exactly like the blocking broker's TimeoutError path;
//   * SpareFd: the EMFILE reserve releases and reacquires;
//   * loadgen smoke: 2000 canned reusable sessions through a windowed
//     single-threaded client sweep, zero failures, zero stuck claims.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuit/circuits.hpp"
#include "crypto/rng.hpp"
#include "evloop/ev_broker.hpp"
#include "evloop/loadgen.hpp"
#include "evloop/session.hpp"
#include "gc/v3.hpp"
#include "net/client.hpp"
#include "net/demo_inputs.hpp"
#include "net/error.hpp"
#include "net/handshake.hpp"
#include "net/reusable_service.hpp"
#include "net/tcp_channel.hpp"
#include "net/v3_service.hpp"
#include "proto/precompute.hpp"

namespace maxel::evloop {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Shuttle: a minimal single-connection server that owns an EvSession and
// feeds it one byte at a time, draining its output after every byte.

struct ShuttleResult {
  bool done = false;
  bool failed = false;
  std::string mode;
  std::string err;
  net::ServerStats stats;
};

bool shuttle_drain(int fd, BufferedChannel& ch) {
  while (ch.has_output()) {
    struct iovec iov[16];
    const std::size_t n = ch.gather(iov, 16);
    if (n == 0) break;
    const ssize_t w = ::writev(fd, iov, static_cast<int>(n));
    if (w <= 0) return false;
    ch.mark_written(static_cast<std::size_t>(w));
  }
  return true;
}

ShuttleResult shuttle_serve_one(net::TcpListener& lst,
                                const EvServeContext& ctx) {
  ShuttleResult res;
  const int cfd = ::accept(lst.fd(), nullptr, nullptr);
  if (cfd < 0) {
    res.err = "accept failed";
    return res;
  }
  EvSession s(ctx);
  std::uint8_t buf[4096];
  while (!s.done() && !s.failed()) {
    const ssize_t n = ::recv(cfd, buf, sizeof buf, 0);
    if (n < 0) break;
    if (n == 0) {
      s.on_peer_eof();
      break;
    }
    for (ssize_t i = 0; i < n && !s.done() && !s.failed(); ++i) {
      s.on_bytes(buf + i, 1);
      if (!shuttle_drain(cfd, s.channel())) break;
      // A lost pool gate would park here; a lone session wins at once.
      while (s.wants_gate_retry()) {
        s.on_gate_retry();
        if (!shuttle_drain(cfd, s.channel())) break;
      }
    }
  }
  shuttle_drain(cfd, s.channel());
  ::shutdown(cfd, SHUT_WR);
  // Linger for the client's EOF so the final frames aren't reset away.
  char tmp[256];
  while (::recv(cfd, tmp, sizeof tmp, 0) > 0) {}
  ::close(cfd);
  res.done = s.done();
  res.failed = s.failed();
  res.mode = s.mode_name();
  res.err = s.error_text();
  if (s.done()) res.stats = s.stats();
  return res;
}

// Standalone EvServeContext (no broker, no spool): sessions are garbled
// on demand by the take callbacks, exactly what the machine consumes.
class EvSessionShuttleTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBits = 8;
  static constexpr std::size_t kRounds = 6;

  void SetUp() override {
    circ_ = circuit::make_mac_circuit(circuit::MacOptions{kBits, kBits, true});
    an_ = gc::analyze_v3(circ_);
    reg_ = std::make_unique<net::V3PoolRegistry>(
        crypto::SystemRandom().next_block());
    net::DemoInputStream a_inputs(7, net::kGarblerStream, kBits);
    g_bits_.resize(kRounds);
    for (auto& row : g_bits_) row = a_inputs.next_bits();

    ctx_.circ = &circ_;
    ctx_.expect.scheme = gc::Scheme::kHalfGates;
    ctx_.expect.bit_width = kBits;
    ctx_.expect.circuit_hash = net::circuit_fingerprint(circ_);
    ctx_.expect.rounds_per_session = kRounds;
    ctx_.expect.allow_stream = true;
    ctx_.expect.allow_v3 = true;
    ctx_.expect.allow_reusable = true;
    ctx_.reg = reg_.get();
    ctx_.bits = kBits;
    ctx_.rounds = kRounds;
    ctx_.demo_seed = 7;
    ctx_.scheme = gc::Scheme::kHalfGates;
    ctx_.stream_chunk_rounds = 2;  // several chunks even at kRounds = 6
    ctx_.take_session = [this] {
      crypto::SystemRandom rng;
      return proto::garble_session(circ_, gc::Scheme::kHalfGates, kRounds,
                                   rng);
    };
    ctx_.take_v3 = [this] {
      crypto::SystemRandom rng;
      return proto::garble_session_v3(circ_, an_, g_bits_, reg_->delta(),
                                      rng.next_block(), rng);
    };
    crypto::SystemRandom garble_rng;
    rctx_ = net::make_reusable_context(
        circ_, net::garble_reusable(circ_, kBits, garble_rng), kRounds, 7);
    ctx_.reusable = &*rctx_;
  }

  net::ClientConfig shuttle_client(std::uint16_t port) {
    net::ClientConfig ccfg;
    ccfg.port = port;
    ccfg.bits = kBits;
    ccfg.verbose = false;
    ccfg.tcp.recv_timeout_ms = 10'000;
    ccfg.tcp.connect_attempts = 5;
    ccfg.tcp.connect_backoff_ms = 20;
    return ccfg;
  }

  circuit::Circuit circ_;
  gc::V3Analysis an_;
  std::unique_ptr<net::V3PoolRegistry> reg_;
  std::vector<std::vector<bool>> g_bits_;
  std::optional<net::ReusableServeContext> rctx_;
  EvServeContext ctx_;
};

TEST_F(EvSessionShuttleTest, PrecomputedByteAtATime) {
  net::TcpListener lst(0, "127.0.0.1", net::ListenOptions{});
  ShuttleResult res;
  std::thread serve([&] { res = shuttle_serve_one(lst, ctx_); });
  const net::ClientStats cs = net::run_client(shuttle_client(lst.port()));
  serve.join();

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(cs.output_value, net::demo_mac_reference(7, kBits, kRounds));
  EXPECT_TRUE(res.done) << res.err;
  EXPECT_EQ(res.mode, "precomputed");
  EXPECT_EQ(res.stats.sessions_served, 1u);
  EXPECT_EQ(res.stats.rounds_served, kRounds);
  EXPECT_EQ(res.stats.bytes_sent, cs.bytes_received);
  EXPECT_EQ(res.stats.bytes_received, cs.bytes_sent);
}

TEST_F(EvSessionShuttleTest, StreamByteAtATime) {
  net::TcpListener lst(0, "127.0.0.1", net::ListenOptions{});
  ShuttleResult res;
  std::thread serve([&] { res = shuttle_serve_one(lst, ctx_); });
  net::ClientConfig ccfg = shuttle_client(lst.port());
  ccfg.mode = net::SessionMode::kStream;
  const net::ClientStats cs = net::run_client(ccfg);
  serve.join();

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(cs.output_value, net::demo_mac_reference(7, kBits, kRounds));
  EXPECT_GT(cs.chunks_received, 1u);
  EXPECT_TRUE(res.done) << res.err;
  EXPECT_EQ(res.mode, "stream");
  EXPECT_EQ(res.stats.stream_sessions_served, 1u);
  EXPECT_GT(res.stats.peak_resident_tables, 0u);
}

TEST_F(EvSessionShuttleTest, V3ByteAtATimeResumesPoolAcrossSessions) {
  net::TcpListener lst(0, "127.0.0.1", net::ListenOptions{});
  crypto::SystemRandom id_rng;
  auto state = net::make_v3_client_state(id_rng);

  std::vector<net::ClientStats> rs;
  for (int i = 0; i < 2; ++i) {
    ShuttleResult res;
    std::thread serve([&] { res = shuttle_serve_one(lst, ctx_); });
    net::ClientConfig ccfg = shuttle_client(lst.port());
    ccfg.protocol = net::kProtocolVersionV3;
    ccfg.v3_state = state;
    rs.push_back(net::run_client(ccfg));
    serve.join();
    EXPECT_TRUE(res.done) << "session " << i << ": " << res.err;
    EXPECT_EQ(res.mode, "v3");
    EXPECT_EQ(res.stats.v3_sessions_served, 1u);
  }

  const std::uint64_t want = net::demo_mac_reference(7, kBits, kRounds);
  EXPECT_TRUE(rs[0].verified);
  EXPECT_TRUE(rs[1].verified);
  EXPECT_EQ(rs[0].output_value, want);
  EXPECT_EQ(rs[1].output_value, want);
  EXPECT_FALSE(rs[0].pool_resumed);
  EXPECT_TRUE(rs[1].pool_resumed);
  EXPECT_LE(rs[1].setup_bytes * 10, rs[0].setup_bytes);
  EXPECT_EQ(reg_->outstanding_claims(), 0u);
}

TEST_F(EvSessionShuttleTest, ReusableByteAtATime) {
  net::TcpListener lst(0, "127.0.0.1", net::ListenOptions{});
  ShuttleResult res;
  std::thread serve([&] { res = shuttle_serve_one(lst, ctx_); });
  net::ClientConfig ccfg = shuttle_client(lst.port());
  ccfg.mode = net::SessionMode::kReusable;
  crypto::SystemRandom id_rng;
  ccfg.v3_state = net::make_v3_client_state(id_rng);
  const net::ClientStats cs = net::run_client(ccfg);
  serve.join();

  EXPECT_TRUE(cs.verified);
  EXPECT_EQ(cs.output_value, net::demo_mac_reference(7, kBits, kRounds));
  EXPECT_TRUE(res.done) << res.err;
  EXPECT_EQ(res.mode, "reusable");
  EXPECT_EQ(res.stats.reusable_sessions_served, 1u);
  EXPECT_EQ(res.stats.reusable_artifacts_sent, 1u);
  EXPECT_EQ(reg_->outstanding_claims(), 0u);
}

// A peer that hangs up mid-handshake must park the machine in the
// failed state with the peer-closed taxonomy, not crash or complete.
TEST_F(EvSessionShuttleTest, EofMidHelloFailsAsPeerClosed) {
  EvSession s(ctx_);
  // A well-formed frame header and the first 8 payload bytes (the
  // magic), then silence: a valid prefix of a real hello.
  std::uint8_t half_hello[12];
  const std::uint32_t frame_len = net::kHelloWireSize;
  const std::uint64_t magic = net::kHelloMagic;
  std::memcpy(half_hello, &frame_len, sizeof frame_len);
  std::memcpy(half_hello + 4, &magic, sizeof magic);
  s.on_bytes(half_hello, sizeof half_hello);
  EXPECT_FALSE(s.done());
  EXPECT_FALSE(s.failed());
  s.on_peer_eof();
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(s.error(), EvError::kPeerClosed);
}

// ---------------------------------------------------------------------------
// SpareFd: the EMFILE reserve.

TEST(SpareFd, ReleasesAndReacquires) {
  SpareFd spare;
  ASSERT_TRUE(spare.held());
  spare.release();
  EXPECT_FALSE(spare.held());
  spare.reacquire();
  EXPECT_TRUE(spare.held());
  // Idempotent in both directions.
  spare.reacquire();
  EXPECT_TRUE(spare.held());
  spare.release();
  spare.release();
  EXPECT_FALSE(spare.held());
}

// ---------------------------------------------------------------------------
// EvBroker over loopback TCP.

class EvBrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spool_dir_ = fs::temp_directory_path() /
                 ("maxel_evloop_test_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()) +
                  "_" + ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
    fs::remove_all(spool_dir_);
  }
  void TearDown() override { fs::remove_all(spool_dir_); }

  EvBrokerConfig quiet_config(std::size_t bits, std::size_t rounds) {
    EvBrokerConfig cfg;
    cfg.bind_addr = "127.0.0.1";
    cfg.port = 0;
    cfg.bits = bits;
    cfg.rounds_per_session = rounds;
    cfg.spool_dir = spool_dir_.string();
    cfg.verbose = false;
    cfg.tcp.recv_timeout_ms = 10'000;
    return cfg;
  }

  net::ClientConfig quiet_client(std::uint16_t port, std::size_t bits) {
    net::ClientConfig ccfg;
    ccfg.port = port;
    ccfg.bits = bits;
    ccfg.verbose = false;
    ccfg.tcp.recv_timeout_ms = 10'000;
    ccfg.tcp.connect_attempts = 5;
    ccfg.tcp.connect_backoff_ms = 20;
    return ccfg;
  }

  fs::path spool_dir_;
};

// All four modes through the sharded front, every MAC bit-identical to
// the plaintext reference, stats/metrics matching the blocking broker's
// semantics, and no OT-pool claim left outstanding.
TEST_F(EvBrokerTest, ServesAllFourModesAcrossShards) {
  const std::size_t bits = 8, rounds = 6;
  EvBrokerConfig cfg = quiet_config(bits, rounds);
  cfg.shards = 2;
  cfg.spool_low_watermark = 1;
  cfg.spool_high_watermark = 4;
  cfg.max_sessions = 4;
  EvBroker broker(cfg);
  std::thread run([&] { broker.run(); });

  const net::ClientStats pre =
      net::run_client(quiet_client(broker.port(), bits));

  net::ClientConfig scfg = quiet_client(broker.port(), bits);
  scfg.mode = net::SessionMode::kStream;
  const net::ClientStats str = net::run_client(scfg);

  crypto::SystemRandom id_rng;
  net::ClientConfig vcfg = quiet_client(broker.port(), bits);
  vcfg.protocol = net::kProtocolVersionV3;
  vcfg.v3_state = net::make_v3_client_state(id_rng);
  const net::ClientStats v3 = net::run_client(vcfg);

  net::ClientConfig rcfg = quiet_client(broker.port(), bits);
  rcfg.mode = net::SessionMode::kReusable;
  rcfg.v3_state = net::make_v3_client_state(id_rng);
  const net::ClientStats reu = net::run_client(rcfg);
  run.join();  // max_sessions reached -> graceful drain

  const std::uint64_t want = net::demo_mac_reference(cfg.demo_seed, bits,
                                                     rounds);
  for (const auto* cs : {&pre, &str, &v3, &reu}) {
    EXPECT_TRUE(cs->verified);
    EXPECT_EQ(cs->output_value, want);
    EXPECT_EQ(cs->rounds, rounds);
  }

  const svc::BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.sessions_served, 4u);
  EXPECT_EQ(st.server.stream_sessions_served, 1u);
  EXPECT_EQ(st.server.v3_sessions_served, 1u);
  EXPECT_EQ(st.server.reusable_sessions_served, 1u);
  EXPECT_EQ(st.server.connection_errors, 0u);
  EXPECT_EQ(st.spool.sessions_claimed, 1u);  // precomputed only
  EXPECT_EQ(st.spool.v3_claimed, 1u);
  EXPECT_EQ(st.admission_rejects, 0u);
  EXPECT_EQ(broker.v3_outstanding_claims(), 0u);

  svc::MetricsRegistry& m = broker.metrics();
  EXPECT_EQ(m.counter("sessions_served").value(), 4);
  EXPECT_EQ(m.counter("rounds_served").value(),
            static_cast<std::int64_t>(4 * rounds));
  EXPECT_EQ(m.histogram("session_seconds").snapshot().count, 4u);
  EXPECT_GT(m.counter("net_tx_bytes_precomputed").value(), 0);
  EXPECT_GT(m.counter("net_tx_bytes_reusable").value(), 0);
  // Event-loop-specific gauges exist (idle again at snapshot time).
  EXPECT_EQ(m.gauge("ev_shard0_sessions").value(), 0);
  EXPECT_EQ(m.gauge("ev_shard1_sessions").value(), 0);
  EXPECT_NE(m.to_json().find("ev_open_fds"), std::string::npos);
}

// A silent peer is evicted by the timer wheel with the blocking
// broker's idle_timeouts + connection_errors accounting.
TEST_F(EvBrokerTest, IdlePeerEvictedByTimerWheel) {
  EvBrokerConfig cfg = quiet_config(8, 4);
  cfg.shards = 1;
  cfg.idle_timeout_ms = 250;
  EvBroker broker(cfg);
  std::thread run([&] { broker.run(); });

  auto idle = net::TcpChannel::connect("127.0.0.1", broker.port(), cfg.tcp);
  const auto t0 = Clock::now();
  while (broker.metrics().counter("idle_timeouts").value() < 1 &&
         std::chrono::duration<double>(Clock::now() - t0).count() < 10.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  broker.request_stop();
  run.join();
  idle.reset();

  const svc::BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.idle_timeouts, 1u);
  EXPECT_EQ(st.server.connection_errors, 1u);  // eviction counts as one
  EXPECT_EQ(st.server.sessions_served, 0u);
  EXPECT_EQ(broker.metrics().counter("idle_timeouts").value(), 1);
}

// request_stop() on an idle evloop broker drains promptly: no blocking
// accept, no lingering timers.
TEST_F(EvBrokerTest, ShutdownLatencyBounded) {
  EvBrokerConfig cfg = quiet_config(8, 4);
  cfg.shards = 2;
  EvBroker broker(cfg);
  std::thread run([&] { broker.run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = Clock::now();
  broker.request_stop();
  run.join();
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - t0).count(), 2.0);
}

// ---------------------------------------------------------------------------
// Loadgen smoke: the CI gate's 2k-client sweep in miniature (same code
// path as bench/fig_broker_scaling, small enough for the test tier).

TEST_F(EvBrokerTest, LoadgenTwoThousandReusableSessionsZeroFailures) {
  EvBrokerConfig cfg = quiet_config(8, 2);
  cfg.shards = 2;
  EvBroker broker(cfg);
  std::thread run([&] { broker.run(); });

  ASSERT_NE(broker.reusable_context(), nullptr);
  ReusableLoadgen lg(broker.v3_registry(), *broker.reusable_context(),
                     broker.expectation());
  LoadgenConfig lcfg;
  lcfg.port = broker.port();
  lcfg.total_sessions = 2000;
  lcfg.window = 256;
  lcfg.clients = 8;
  const LoadgenResult res = lg.run(lcfg);

  broker.request_stop();
  run.join();

  EXPECT_EQ(res.ok, 2000u);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_LE(res.peak_inflight, lcfg.window);
  EXPECT_GT(res.sessions_per_sec(), 0.0);

  const svc::BrokerStats st = broker.stats();
  EXPECT_EQ(st.server.reusable_sessions_served, 2000u);
  EXPECT_EQ(st.server.reusable_artifacts_sent, 0u);  // hash-confirmed cache
  EXPECT_EQ(broker.v3_outstanding_claims(), 0u);
}

}  // namespace
}  // namespace maxel::evloop
