// Unit tests for the crypto substrate: AES-128 known-answer vectors,
// block algebra, SHA-256 vectors, PRG behaviour, and the statistical
// quality of the ring-oscillator RNG model.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/block.hpp"
#include "crypto/gc_hash.hpp"
#include "crypto/prg.hpp"
#include "crypto/randomness_tests.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

#include <chrono>

namespace maxel::crypto {
namespace {

Block block_from_hex_bytes(const std::uint8_t (&b)[16]) {
  return Block::from_bytes(b);
}

TEST(Block, XorAndEquality) {
  const Block a{0x1234, 0x5678};
  const Block b{0xFFFF, 0x0001};
  EXPECT_EQ((a ^ b) ^ b, a);
  EXPECT_EQ(a ^ Block::zero(), a);
  EXPECT_NE(a, b);
  EXPECT_TRUE((a ^ a).is_zero());
}

TEST(Block, LsbIsColorBit) {
  EXPECT_TRUE(Block(1, 0).lsb());
  EXPECT_FALSE(Block(2, 0).lsb());
  EXPECT_FALSE(Block(0, 1).lsb());
}

TEST(Block, BytesRoundTrip) {
  const Block a{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  std::uint8_t buf[16];
  a.to_bytes(buf);
  EXPECT_EQ(Block::from_bytes(buf), a);
  EXPECT_EQ(buf[0], 0xEF);  // little-endian low limb first
}

TEST(Block, GfDoubleMatchesPolynomialArithmetic) {
  // 2 * 1 = x.
  EXPECT_EQ(Block(1, 0).gf_double(), Block(2, 0));
  // Doubling the top bit wraps to the reduction polynomial 0x87.
  EXPECT_EQ(Block(0, 0x8000000000000000ull).gf_double(), Block(0x87, 0));
  // Linearity: 2(a ^ b) == 2a ^ 2b.
  const Block a{0xDEADBEEFCAFEBABEull, 0x0123456789ABCDEFull};
  const Block b{0x1122334455667788ull, 0x99AABBCCDDEEFF00ull};
  EXPECT_EQ((a ^ b).gf_double(), a.gf_double() ^ b.gf_double());
}

TEST(Aes128, Fips197KnownAnswer) {
  const std::uint8_t key_bytes[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                      0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                      0x0c, 0x0d, 0x0e, 0x0f};
  const std::uint8_t pt_bytes[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                     0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                     0xcc, 0xdd, 0xee, 0xff};
  const std::uint8_t expect_ct[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                      0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                      0x70, 0xb4, 0xc5, 0x5a};
  const Aes128 aes(block_from_hex_bytes(key_bytes));
  const Block ct = aes.encrypt(block_from_hex_bytes(pt_bytes));
  EXPECT_EQ(ct, block_from_hex_bytes(expect_ct));
}

TEST(Aes128, NistAesAvsVector) {
  // AESAVS GFSbox: key = 0, pt = f34481ec3cc627bacd5dc3fb08f273e6
  // -> ct = 0336763e966d92595a567cc9ce537f5e.
  const std::uint8_t pt_bytes[16] = {0xf3, 0x44, 0x81, 0xec, 0x3c, 0xc6,
                                     0x27, 0xba, 0xcd, 0x5d, 0xc3, 0xfb,
                                     0x08, 0xf2, 0x73, 0xe6};
  const std::uint8_t ct_bytes[16] = {0x03, 0x36, 0x76, 0x3e, 0x96, 0x6d,
                                     0x92, 0x59, 0x5a, 0x56, 0x7c, 0xc9,
                                     0xce, 0x53, 0x7f, 0x5e};
  const Aes128 aes(Block::zero());
  EXPECT_EQ(aes.encrypt(block_from_hex_bytes(pt_bytes)),
            block_from_hex_bytes(ct_bytes));
}

TEST(Aes128, Encrypt4MatchesScalar) {
  const Aes128 aes;
  Block in[4] = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  Block out[4];
  aes.encrypt4(in, out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], aes.encrypt(in[i]));
}

TEST(Aes128, DifferentKeysDiffer) {
  const Aes128 a(Block{1, 0});
  const Aes128 b(Block{2, 0});
  EXPECT_NE(a.encrypt(Block::zero()), b.encrypt(Block::zero()));
}

// Pins a backend for the scope of a test and restores auto-detection.
struct ScopedBackend {
  explicit ScopedBackend(AesBackend b) { set_aes_backend(b); }
  ~ScopedBackend() { set_aes_backend(AesBackend::kAuto); }
};

TEST(AesBackend, ActiveBackendIsConcrete) {
  EXPECT_NE(aes_active_backend(), AesBackend::kAuto);
  // Pinning the table backend always works; pinning aesni falls back to
  // table when unsupported instead of crashing.
  {
    ScopedBackend pin(AesBackend::kTable);
    EXPECT_EQ(aes_active_backend(), AesBackend::kTable);
  }
  {
    ScopedBackend pin(AesBackend::kAesni);
    EXPECT_EQ(aes_active_backend(),
              aesni_supported() ? AesBackend::kAesni : AesBackend::kTable);
  }
}

TEST(AesBackend, AesniMatchesTableOnFips197) {
  if (!aesni_supported()) GTEST_SKIP() << "no AES-NI on this host/build";
  const std::uint8_t key_bytes[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                      0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                      0x0c, 0x0d, 0x0e, 0x0f};
  const std::uint8_t pt_bytes[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                     0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                     0xcc, 0xdd, 0xee, 0xff};
  const std::uint8_t expect_ct[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                      0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                      0x70, 0xb4, 0xc5, 0x5a};
  const Aes128 aes(block_from_hex_bytes(key_bytes));
  const Block pt = block_from_hex_bytes(pt_bytes);
  Block ct_table, ct_ni;
  {
    ScopedBackend pin(AesBackend::kTable);
    ct_table = aes.encrypt(pt);
  }
  {
    ScopedBackend pin(AesBackend::kAesni);
    ct_ni = aes.encrypt(pt);
  }
  EXPECT_EQ(ct_table, block_from_hex_bytes(expect_ct));
  EXPECT_EQ(ct_ni, block_from_hex_bytes(expect_ct));
}

TEST(AesBackend, AesniMatchesTableOn10kRandomBlocks) {
  if (!aesni_supported()) GTEST_SKIP() << "no AES-NI on this host/build";
  constexpr std::size_t kN = 10000;
  // Raw counter blocks as inputs (a PRG would itself call AES through
  // the backend under test).
  std::vector<Block> in(kN);
  for (std::size_t i = 0; i < kN; ++i)
    in[i] = Block{0x9E3779B97F4A7C15ull * (i + 1), ~static_cast<std::uint64_t>(i)};

  const Aes128 aes;
  std::vector<Block> out_table(kN), out_ni(kN);
  {
    ScopedBackend pin(AesBackend::kTable);
    aes.encrypt_batch(in.data(), out_table.data(), kN);
  }
  {
    ScopedBackend pin(AesBackend::kAesni);
    aes.encrypt_batch(in.data(), out_ni.data(), kN);
    // Odd batch tails exercise the 8/4/2/1-wide ladder.
    std::vector<Block> odd(kN);
    aes.encrypt_batch(in.data(), odd.data(), kN - 3);
    for (std::size_t i = 0; i < kN - 3; ++i) ASSERT_EQ(odd[i], out_ni[i]);
  }
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(out_table[i], out_ni[i]) << i;
}

TEST(Aes128, EncryptBatchMatchesScalarAllSizes) {
  const Aes128 aes;
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{7}, std::size_t{8}, std::size_t{9},
                        std::size_t{17}, std::size_t{33}}) {
    std::vector<Block> in(n), out(n);
    for (std::size_t i = 0; i < n; ++i) in[i] = Block{i * 1234567, i};
    aes.encrypt_batch(in.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], aes.encrypt(in[i]));
  }
}

TEST(GcHash, HashBatchMatchesScalar) {
  const GcHash h;
  constexpr std::size_t kN = 37;  // spans two internal chunks
  std::vector<Block> x(kN), t(kN), out(kN);
  Prg prg(Block{11, 13});
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = prg.next_block();
    t[i] = Block{2 * i, i};
  }
  h.hash_batch(x.data(), t.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], h(x[i], t[i]));
}

TEST(GcHash, HashMaskedBatchMatchesTwoInputVariant) {
  const GcHash h;
  const Block a{0xAAA, 1}, b{0xBBB, 2}, t{6, 3};
  Block m = a.gf_double().gf_double() ^ b.gf_double() ^ t;
  Block out;
  h.hash_masked_batch(&m, &out, 1);
  EXPECT_EQ(out, h(a, b, t));
}

TEST(GcHash, TweakSeparatesOutputs) {
  const GcHash h;
  const Block x{0x1111, 0x2222};
  EXPECT_NE(h(x, Block{0, 0}), h(x, Block{1, 0}));
  EXPECT_NE(h(x, Block{0, 0}), h(x ^ Block{1, 0}, Block{0, 0}));
}

TEST(GcHash, TwoInputVariantDependsOnBoth) {
  const GcHash h;
  const Block a{1, 0}, b{2, 0}, t{3, 0};
  EXPECT_NE(h(a, b, t), h(b, a, t));
  EXPECT_NE(h(a, b, t), h(a, b, Block{4, 0}));
}

TEST(Sha256, EmptyString) {
  Sha256 h;
  EXPECT_EQ(Sha256::hex(h.digest()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  Sha256 h;
  h.update("abc");
  EXPECT_EQ(Sha256::hex(h.digest()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  Sha256 h;
  h.update("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(Sha256::hex(h.digest()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  Sha256 a;
  a.update(msg);
  Sha256 b;
  for (char c : msg) b.update(std::string(1, c));
  EXPECT_EQ(a.digest(), b.digest());
}


TEST(Sha1, KnownVectors) {
  Sha1 h;
  EXPECT_EQ(Sha1::hex(h.digest()),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  Sha1 h2;
  h2.update("abc");
  EXPECT_EQ(Sha1::hex(h2.digest()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  Sha1 h3;
  h3.update("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(Sha1::hex(h3.digest()),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, GcHashVariantBehaves) {
  const Block x{1, 2};
  EXPECT_NE(sha1_gc_hash(x, Block{0, 0}), sha1_gc_hash(x, Block{1, 0}));
  EXPECT_NE(sha1_gc_hash(x, Block{0, 0}), sha1_gc_hash(Block{2, 2}, Block{0, 0}));
  EXPECT_EQ(sha1_gc_hash(x, Block{7, 7}), sha1_gc_hash(x, Block{7, 7}));
}

TEST(Sha1, SlowerThanFixedKeyAes) {
  // The paper's point about [14]: SHA-1 garbling is the expensive part.
  // One SHA-1 compression must cost more than one AES-128 encryption.
  const GcHash aes_hash;
  const Block x{3, 4};
  const auto t0 = std::chrono::steady_clock::now();
  Block acc = Block::zero();
  for (int i = 0; i < 20000; ++i)
    acc ^= aes_hash(x, Block{static_cast<std::uint64_t>(i), 0});
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20000; ++i)
    acc ^= sha1_gc_hash(x, Block{static_cast<std::uint64_t>(i), 0});
  const auto t2 = std::chrono::steady_clock::now();
  if (acc.lo == 0xDEADBEEF) std::printf("improbable\n");
  EXPECT_GT((t2 - t1).count(), (t1 - t0).count());
}

TEST(Prg, DeterministicFromSeed) {
  Prg a(Block{42, 0});
  Prg b(Block{42, 0});
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_block(), b.next_block());
}

TEST(Prg, DifferentSeedsDiverge) {
  Prg a(Block{42, 0});
  Prg b(Block{43, 0});
  EXPECT_NE(a.next_block(), b.next_block());
}

TEST(Prg, NextBelowIsInRange) {
  Prg p(Block{7, 7});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(p.next_below(13), 13u);
  }
}

TEST(Prg, BitsLengthAndDeterminism) {
  Prg a(Block{9, 9});
  Prg b(Block{9, 9});
  const auto bits_a = a.bits(777);
  const auto bits_b = b.bits(777);
  ASSERT_EQ(bits_a.size(), 777u);
  EXPECT_EQ(bits_a, bits_b);
}

TEST(SystemRandom, SeededReproducible) {
  SystemRandom a(Block{5, 5});
  SystemRandom b(Block{5, 5});
  EXPECT_EQ(a.next_block(), b.next_block());
}

TEST(RandomDelta, LsbAlwaysSet) {
  SystemRandom rng(Block{11, 0});
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(random_delta(rng).lsb());
}

TEST(RingOscillatorRng, PassesRandomnessBattery) {
  // The paper validates its RO-RNG with the NIST battery; our behavioural
  // model should clear the same bar at these jitter settings.
  RingOscillatorRng rng;
  std::vector<bool> bits;
  bits.reserve(1 << 15);
  for (int i = 0; i < (1 << 15); ++i) bits.push_back(rng.sample_bit());
  const auto report = run_battery(bits);
  EXPECT_TRUE(report.passes(0.01))
      << "monobit=" << report.monobit_p << " runs=" << report.runs_p
      << " poker=" << report.poker_p;
  EXPECT_GT(report.entropy_per_bit, 0.99);
  EXPECT_LT(std::abs(report.serial_corr), 0.05);
}

TEST(RingOscillatorRng, PowerGatingCounters) {
  RingOscillatorRng rng;
  (void)rng.sample_bit();
  (void)rng.sample_bit();
  rng.idle_cycle();
  EXPECT_EQ(rng.cycles_active(), 2u);
  EXPECT_EQ(rng.cycles_gated(), 1u);
}

TEST(RingOscillatorRng, BlocksAreDistinct) {
  RingOscillatorRng rng;
  std::set<std::string> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.next_block().hex());
  EXPECT_EQ(seen.size(), 16u);
}


TEST(RandomnessBattery, BlockFrequencyAndCusum) {
  // Good stream: AES-CTR PRG output passes both extended tests.
  Prg prg(Block{0xBA77, 0});
  const auto good = prg.bits(1 << 15);
  EXPECT_GT(block_frequency_test(good), 0.01);
  EXPECT_GT(cusum_test(good), 0.01);

  // Locally-biased stream: balanced overall (monobit-clean) but with
  // long one-heavy then zero-heavy halves — block frequency and cusum
  // must both catch it.
  std::vector<bool> drift(1 << 14);
  for (std::size_t i = 0; i < drift.size(); ++i) {
    const bool first_half = i < drift.size() / 2;
    drift[i] = first_half ? (i % 4 != 0) : (i % 4 == 0);  // 75% then 25%
  }
  EXPECT_GT(monobit_test(drift), 0.01);  // fooled by global balance
  EXPECT_LT(block_frequency_test(drift), 0.01);
  EXPECT_LT(cusum_test(drift), 0.01);
}

TEST(RandomnessBattery, RoRngPassesExtendedTests) {
  RingOscillatorRng rng;
  std::vector<bool> bits;
  bits.reserve(1 << 14);
  for (int i = 0; i < (1 << 14); ++i) bits.push_back(rng.sample_bit());
  EXPECT_GT(block_frequency_test(bits), 0.001);
  EXPECT_GT(cusum_test(bits), 0.001);
}

TEST(RandomnessBattery, RejectsConstantStream) {
  const std::vector<bool> zeros(4096, false);
  EXPECT_FALSE(run_battery(zeros).passes());
}

TEST(RandomnessBattery, RejectsAlternatingStream) {
  std::vector<bool> alt(4096);
  for (std::size_t i = 0; i < alt.size(); ++i) alt[i] = (i % 2) == 0;
  // Perfectly balanced, so monobit passes, but runs must fail.
  EXPECT_LT(runs_test(alt), 0.01);
}

}  // namespace
}  // namespace maxel::crypto
