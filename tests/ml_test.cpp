// ML case-study tests: the actual solvers (ridge regression, matrix
// factorization, portfolio risk), the runtime models that reproduce the
// paper's Sec. 6 numbers, and the secure linear-algebra layer running
// real GC protocol rounds.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/kernel_solver.hpp"
#include "ml/mac_cost_model.hpp"
#include "ml/portfolio.hpp"
#include "ml/recommender.hpp"
#include "ml/ridge.hpp"
#include "ml/secure_linalg.hpp"

namespace maxel::ml {
namespace {

TEST(MacBackend, MaxeleratorRatesMatchTable2) {
  EXPECT_NEAR(maxelerator_backend(8).time_per_mac_us, 0.12, 1e-12);
  EXPECT_NEAR(maxelerator_backend(16).time_per_mac_us, 0.24, 1e-12);
  EXPECT_NEAR(maxelerator_backend(32).time_per_mac_us, 0.48, 1e-12);
  EXPECT_NEAR(maxelerator_backend(32).macs_per_sec(), 2.08e6, 0.01e6);
  // Adding units scales linearly ("throughput can be increased linearly
  // by adding more GC cores to the FPGA").
  EXPECT_DOUBLE_EQ(maxelerator_backend(32, 25).macs_per_sec(),
                   25.0 * maxelerator_backend(32).macs_per_sec());
}

TEST(MacBackend, SpeedupOverTinyGarbleMatchesPaperBand) {
  // Table 2 last row: 44x / 48x / 57x per core.
  for (const auto& [b, expect] :
       std::initializer_list<std::pair<std::size_t, double>>{
           {8, 44.0}, {16, 48.0}, {32, 57.0}}) {
    const double s = backend_speedup(maxelerator_backend(b),
                                     tinygarble_paper_backend(b));
    // Per-core: MAXelerator has cores(b) GC cores per unit.
    const double cores = b == 8 ? 8.0 : (b == 16 ? 14.0 : 24.0);
    EXPECT_NEAR(s / cores, expect, 0.05 * expect) << "b=" << b;
  }
}

TEST(Ridge, SolverRecoversPlantedModel) {
  const RidgeDataset data = make_synthetic_dataset("t", 400, 8, 1, 0.05);
  const RidgeFit fit = solve_ridge(data, 1e-3);
  EXPECT_EQ(fit.beta.size(), 8u);
  // Noise level 0.05 => training RMSE should be near the noise floor.
  EXPECT_LT(fit.train_rmse, 0.1);
}

TEST(Ridge, LambdaRegularizes) {
  const RidgeDataset data = make_synthetic_dataset("t", 50, 10, 2, 0.0);
  const RidgeFit tight = solve_ridge(data, 1e-6);
  const RidgeFit heavy = solve_ridge(data, 1e3);
  EXPECT_LT(fixed::norm2(heavy.beta), fixed::norm2(tight.beta));
}

TEST(Ridge, OpCountsFollowComplexity) {
  const RidgeOpCounts c = ridge_op_counts(1000, 10);
  EXPECT_DOUBLE_EQ(c.macs, 1000.0 + 100.0);  // d^3 + d^2
  EXPECT_DOUBLE_EQ(c.divisions, 100.0);
  EXPECT_DOUBLE_EQ(c.square_roots, 10.0);
  EXPECT_DOUBLE_EQ(c.samples, 1000.0);
}

TEST(Ridge, Table3ModelReproducesShape) {
  const auto rows = reproduce_table3(maxelerator_backend(32));
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    // Each modeled improvement should land within 2x of the published
    // factor (16.8x - 39.8x band).
    EXPECT_GT(r.model_improvement, 0.5 * r.paper_improvement) << r.name;
    EXPECT_LT(r.model_improvement, 2.0 * r.paper_improvement) << r.name;
    // The fitted baseline should land near the published runtime.
    EXPECT_NEAR(r.model_baseline_s, r.paper_baseline_s,
                0.6 * r.paper_baseline_s)
        << r.name;
  }
  // Shape: the largest-d dataset improves the most, as in the paper.
  EXPECT_GT(rows.front().model_improvement, rows.back().model_improvement);
}

TEST(Ridge, CostModelIsNonNegative) {
  const RidgeCostModel m = fit_ridge_cost_model(maxelerator_backend(32));
  EXPECT_GE(m.t_mac_us, 0.0);
  EXPECT_GE(m.t_div_us, 0.0);
  EXPECT_GE(m.t_sqrt_us, 0.0);
  EXPECT_GE(m.t_sample_us, 0.0);
  EXPECT_GT(m.t_mac_us + m.t_div_us + m.t_sqrt_us + m.t_sample_us, 0.0);
}

TEST(Recommender, TrainingConvergesOnSyntheticRatings) {
  MfConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 150;
  cfg.num_ratings = 12000;  // dense enough for the factors to identify
  cfg.dim = 4;
  cfg.iterations = 25;
  cfg.learning_rate = 0.08;
  const auto ratings = make_synthetic_ratings(cfg);
  ASSERT_EQ(ratings.size(), cfg.num_ratings);
  const MfResult res = train_matrix_factorization(cfg, ratings);

  ASSERT_EQ(res.rmse_per_iteration.size(), cfg.iterations);
  EXPECT_LT(res.rmse_per_iteration.back(),
            0.7 * res.rmse_per_iteration.front());
  // Counted MACs: (prediction d + gradient 2d) per rating.
  EXPECT_EQ(res.macs_per_iteration, cfg.num_ratings * 3 * cfg.dim);
}

TEST(Recommender, CaseModelReproducesHeadline) {
  // With the Table 2 speedup band (>= 44x aggregate), the 2.9 h iteration
  // drops to about 1 h, a 65-69% improvement — the paper's claim.
  const RecommendationCase c;
  const double speedup = backend_speedup(maxelerator_backend(32),
                                         tinygarble_paper_backend(32, 16));
  EXPECT_GT(speedup, 44.0);
  const double ours = c.model_accelerated_hours(speedup);
  EXPECT_NEAR(ours, 1.0, 0.05);
  EXPECT_NEAR(c.model_improvement_percent(speedup), 66.0, 3.0);
}

TEST(Portfolio, CovarianceIsSpd) {
  const auto cov = make_synthetic_covariance(5, 3);
  // SPD check: Cholesky must succeed.
  EXPECT_NO_THROW((void)fixed::cholesky_solve(cov, {1, 1, 1, 1, 1}));
}

TEST(Portfolio, RiskIsPositive) {
  const auto cov = make_synthetic_covariance(4, 9);
  const auto w = make_portfolio_weights(4, 10);
  double sum = 0.0;
  for (const double v : w) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(portfolio_risk(w, cov), 0.0);
}

TEST(Portfolio, TimingModelMatchesPaperOrder) {
  const PortfolioCase c;
  const PortfolioTiming t = portfolio_timing(
      c, tinygarble_paper_backend(32), maxelerator_backend(32));
  EXPECT_DOUBLE_EQ(t.macs, 252.0 * 6.0);
  // Pure MAC garbling time under TinyGarble: ~0.99 s; the paper's 1.33 s
  // total adds OT/host overhead — same order.
  EXPECT_NEAR(t.tinygarble_s, c.paper_tinygarble_s, 0.5 * c.paper_tinygarble_s);
  // MAXelerator side: sub-paper (their 15.23 ms total is host-dominated);
  // ours is the garbling component and must be well below it.
  EXPECT_LT(t.maxelerator_s, c.paper_maxelerator_s);
  EXPECT_GT(t.speedup, 100.0);
}


TEST(KernelSolver, ConvergesToLeastSquares) {
  // Eq. 2 gradient descent must reach the normal-equation solution.
  const RidgeDataset data = make_synthetic_dataset("gd", 120, 6, 11, 0.0);
  KernelSolverConfig cfg;
  cfg.iterations = 5000;
  cfg.tolerance = 1e-12;
  const KernelSolveResult res = solve_kernel_gd(data.x, data.y, cfg);
  const auto direct = fixed::least_squares(data.x, data.y);
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(res.x[j], direct[j], 1e-5) << "coef " << j;
  // Residuals must be non-increasing (fixed stable step).
  for (std::size_t i = 1; i < res.residual_norms.size(); ++i)
    EXPECT_LE(res.residual_norms[i], res.residual_norms[i - 1] + 1e-12);
  EXPECT_EQ(res.macs_per_iteration, 2u * 120u * 6u);
}

TEST(KernelSolver, AutoStepIsStable) {
  const RidgeDataset data = make_synthetic_dataset("gd2", 60, 10, 12, 0.1);
  KernelSolverConfig cfg;
  cfg.iterations = 200;
  const KernelSolveResult res = solve_kernel_gd(data.x, data.y, cfg);
  EXPECT_GT(res.step_size, 0.0);
  EXPECT_LT(res.residual_norms.back(), res.residual_norms.front());
}

TEST(KernelSolver, SecureIterationCostFollowsBackends) {
  const RidgeDataset data = make_synthetic_dataset("gd3", 100, 8, 13, 0.0);
  KernelSolverConfig cfg;
  cfg.iterations = 1;
  const KernelSolveResult res = solve_kernel_gd(data.x, data.y, cfg);
  const double sw = seconds_per_iteration(res, tinygarble_paper_backend(32));
  const double hw = seconds_per_iteration(res, maxelerator_backend(32));
  EXPECT_GT(sw / hw, 1000.0);  // device-level Table 2 gap
}

TEST(SecureLinalg, SecureDotMatchesPlaintext) {
  const fixed::FixedFormat fmt{32, 8};
  const std::vector<double> a = {1.5, -2.0, 0.25, 3.0};
  const std::vector<double> x = {0.5, 1.0, -4.0, 2.0};
  const SecureDotResult r = secure_dot(a, x, fmt);
  EXPECT_NEAR(r.value, fixed::dot(a, x), 1e-9);
  EXPECT_EQ(r.rounds, 4u);
  EXPECT_GT(r.table_bytes, 0u);
  EXPECT_GT(r.garbler_bytes, r.table_bytes);  // tables + labels + OT
}

TEST(SecureLinalg, SecureMatVecMatchesPlaintext) {
  const fixed::FixedFormat fmt{32, 8};
  fixed::Matrix m(2, 3);
  m(0, 0) = 1.0; m(0, 1) = 2.0; m(0, 2) = -1.5;
  m(1, 0) = 0.5; m(1, 1) = -1.0; m(1, 2) = 4.0;
  const std::vector<double> x = {2.0, -0.5, 1.0};
  const SecureMatVecResult r = secure_matvec(m, x, fmt);
  const std::vector<double> expect = m * x;
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_NEAR(r.values[0], expect[0], 1e-9);
  EXPECT_NEAR(r.values[1], expect[1], 1e-9);
  EXPECT_EQ(r.total_rounds, 6u);
}


TEST(SecureLinalg, ScaledDotReturnsInputFormat) {
  const fixed::FixedFormat fmt{16, 6};
  const std::vector<double> a = {1.5, -2.25, 0.5, 3.0};
  const std::vector<double> x = {2.0, 1.0, -4.0, 0.25};
  const SecureDotResult r = secure_dot_scaled(a, x, fmt);
  EXPECT_NEAR(r.value, fixed::dot(a, x), 4.0 * fmt.resolution());
  EXPECT_EQ(r.rounds, 4u);
}

TEST(SecureLinalg, LengthMismatchThrows) {
  const fixed::FixedFormat fmt{32, 8};
  EXPECT_THROW((void)secure_dot({1.0}, {1.0, 2.0}, fmt),
               std::invalid_argument);
}

}  // namespace
}  // namespace maxel::ml
