// Nightly sweep knobs for the randomized suites (the `fuzz` and `sweep`
// CTest labels). Tier-1 runs pin every seed so failures reproduce from
// the log; the nightly workflow widens the net instead:
//
//  MAXEL_SWEEP_SCALE  multiplies randomized trial counts (default 1 —
//                     tier-1 cost; nightly runs at ~20x).
//  MAXEL_SWEEP_SEED   replaces the pinned sweep seeds with a fresh one
//                     (any strtoull base-0 literal). Every sweep test
//                     puts the effective seed in its SCOPED_TRACE, and
//                     the nightly job uploads it on failure, so a red
//                     nightly replays locally by exporting the same
//                     value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace maxel::test {

inline std::size_t sweep_scale() {
  const char* s = std::getenv("MAXEL_SWEEP_SCALE");
  if (s == nullptr) return 1;
  const long v = std::strtol(s, nullptr, 10);
  return v < 1 ? 1 : static_cast<std::size_t>(v);
}

// Trial count for a sweep loop: `base` iterations at tier-1 scale.
inline int sweep_trials(int base) {
  return base * static_cast<int>(sweep_scale());
}

// The pinned seed, unless the environment supplies a fresh one.
inline std::uint64_t sweep_seed(std::uint64_t pinned) {
  const char* s = std::getenv("MAXEL_SWEEP_SEED");
  if (s == nullptr) return pinned;
  return std::strtoull(s, nullptr, 0);
}

}  // namespace maxel::test
