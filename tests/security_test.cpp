// Security-property and failure-injection tests.
//
// Property tests: garbled tables and published color bits must be
// statistically indistinguishable from random (anything else is a leak);
// fresh labels every round; corrupted or misaligned material must be
// detectable, never silently accepted as the correct result.
#include <gtest/gtest.h>

#include "circuit/circuits.hpp"
#include "crypto/randomness_tests.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"

namespace maxel::gc {
namespace {

using circuit::MacOptions;
using crypto::Block;
using crypto::SystemRandom;

std::vector<bool> bits_of_tables(const std::vector<GarbledTable>& tables,
                                 Scheme scheme) {
  std::vector<bool> bits;
  bits.reserve(tables.size() * rows_per_and(scheme) * 128);
  for (const auto& t : tables) {
    for (std::size_t r = 0; r < rows_per_and(scheme); ++r) {
      std::uint8_t raw[16];
      t.ct[r].to_bytes(raw);
      for (int byte = 0; byte < 16; ++byte)
        for (int bit = 0; bit < 8; ++bit)
          bits.push_back(((raw[byte] >> bit) & 1) != 0);
    }
  }
  return bits;
}

class TableRandomness : public ::testing::TestWithParam<Scheme> {};

TEST_P(TableRandomness, GarbledTablesLookUniform) {
  // An evaluator (or eavesdropper) holding only the tables must see
  // pseudorandom bytes; structure in the ciphertexts is information
  // leakage. Run the NIST-style battery over a full MAC round's tables.
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{16, 16, true});
  SystemRandom rng(Block{0x5EC, static_cast<std::uint64_t>(GetParam())});
  CircuitGarbler garbler(c, GetParam(), rng);
  const RoundTables tables = garbler.garble_round();
  const auto bits = bits_of_tables(tables.tables, GetParam());
  ASSERT_GT(bits.size(), 10000u);
  const auto report = crypto::run_battery(bits);
  EXPECT_TRUE(report.passes(0.001))
      << scheme_name(GetParam()) << ": monobit=" << report.monobit_p
      << " runs=" << report.runs_p << " poker=" << report.poker_p;
  EXPECT_GT(report.entropy_per_bit, 0.995);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TableRandomness,
                         ::testing::Values(Scheme::kClassic4, Scheme::kGrr3,
                                           Scheme::kHalfGates),
                         [](const auto& info) {
                           return std::string(scheme_name(info.param));
                         });

TEST(ColorBits, OutputMapIsUnbiasedAcrossRounds) {
  // The published decode map is the lsb of the output 0-labels; bias
  // there would leak output values. Collect it over many fresh rounds.
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  SystemRandom rng(Block{0xC0108, 1});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  std::vector<bool> bits;
  for (int round = 0; round < 200; ++round) {
    (void)garbler.garble_round();
    const auto map = garbler.output_map();
    bits.insert(bits.end(), map.begin(), map.end());
  }
  EXPECT_GT(crypto::monobit_test(bits), 0.001);
}

TEST(ActiveLabels, RevealNothingWithoutDelta) {
  // The two labels of any wire differ by the same secret delta; a single
  // active label is a uniform 128-bit value. Sanity: active labels
  // across wires/rounds pass the battery.
  const circuit::Circuit c =
      circuit::make_dot_product_circuit(2, MacOptions{8, 8, true});
  SystemRandom rng(Block{0xAB, 2});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  std::vector<bool> bits;
  for (int round = 0; round < 40; ++round) {
    (void)garbler.garble_round();
    for (std::size_t i = 0; i < c.garbler_inputs.size(); ++i) {
      const Block l = garbler.garbler_input_label(i, (i + static_cast<std::size_t>(round)) % 2 != 0);
      std::uint8_t raw[16];
      l.to_bytes(raw);
      for (int byte = 0; byte < 16; ++byte)
        for (int bit = 0; bit < 8; ++bit)
          bits.push_back(((raw[byte] >> bit) & 1) != 0);
    }
  }
  EXPECT_TRUE(crypto::run_battery(bits).passes(0.001));
}

TEST(FailureInjection, CorruptedTableIsDetectedAtDecode) {
  const circuit::Circuit c = circuit::make_multiplier_circuit(MacOptions{8, 8, true});
  SystemRandom rng(Block{0xBAD, 3});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  RoundTables tables = garbler.garble_round();
  // Corrupt both half-gate rows of the last several tables: a single row
  // is only consulted when the matching color bit is 1, so flipping
  // several guarantees at least one corrupted row is on the active path.
  ASSERT_GE(tables.tables.size(), 6u);
  for (std::size_t k = tables.tables.size() - 6; k < tables.tables.size();
       ++k) {
    tables.tables[k].ct[0].lo ^= 1ull << 17;
    tables.tables[k].ct[1].hi ^= 1ull << 41;
  }

  CircuitEvaluator evaluator(c, Scheme::kHalfGates);
  std::vector<Block> g_labels, e_labels;
  for (std::size_t i = 0; i < 8; ++i) {
    g_labels.push_back(garbler.garbler_input_label(i, i % 2 != 0));
    e_labels.push_back(garbler.evaluator_input_labels(i).first);
  }
  const auto out = evaluator.eval_round(tables, g_labels, e_labels,
                                        garbler.fixed_wire_labels());
  // Garbler-side authoritative decode must reject at least one output
  // label (it is neither the 0- nor the 1-label of that wire).
  bool rejected = false;
  for (std::size_t i = 0; i < out.size() && !rejected; ++i) {
    try {
      (void)garbler.decode_output(i, out[i]);
    } catch (const std::runtime_error&) {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST(FailureInjection, WrongRoundTablesDoNotDecode) {
  // Using round r's tables with round r+1's labels (a desync) must be
  // detected by the garbler-side decode.
  const circuit::Circuit c = circuit::make_multiplier_circuit(MacOptions{4, 4, false});
  SystemRandom rng(Block{0xDE5, 4});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  const RoundTables stale = garbler.garble_round();
  (void)garbler.garble_round();  // advance: labels now belong to round 1

  CircuitEvaluator evaluator(c, Scheme::kHalfGates);
  std::vector<Block> g_labels, e_labels;
  for (std::size_t i = 0; i < 4; ++i) {
    g_labels.push_back(garbler.garbler_input_label(i, false));
    e_labels.push_back(garbler.evaluator_input_labels(i).first);
  }
  const auto out = evaluator.eval_round(stale, g_labels, e_labels,
                                        garbler.fixed_wire_labels());
  bool rejected = false;
  for (std::size_t i = 0; i < out.size() && !rejected; ++i) {
    try {
      (void)garbler.decode_output(i, out[i]);
    } catch (const std::runtime_error&) {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST(FailureInjection, SwappedEvaluatorLabelChangesResultConsistently) {
  // Feeding the 1-label instead of the 0-label is not an error — it is
  // the evaluator computing on different inputs. The protocol must stay
  // internally consistent (decodes to the correct OTHER value).
  const circuit::Circuit c = circuit::make_millionaires_circuit(8);
  SystemRandom rng(Block{0x5AB, 5});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  const RoundTables tables = garbler.garble_round();

  const std::uint64_t a = 100;
  std::vector<Block> g_labels;
  for (std::size_t i = 0; i < 8; ++i)
    g_labels.push_back(garbler.garbler_input_label(i, ((a >> i) & 1) != 0));

  for (const std::uint64_t b : {50ull, 150ull}) {
    CircuitEvaluator evaluator(c, Scheme::kHalfGates);
    std::vector<Block> e_labels;
    for (std::size_t i = 0; i < 8; ++i) {
      const auto [l0, l1] = garbler.evaluator_input_labels(i);
      e_labels.push_back(((b >> i) & 1) != 0 ? l1 : l0);
    }
    const auto out = evaluator.eval_round(tables, g_labels, e_labels,
                                          garbler.fixed_wire_labels());
    EXPECT_EQ(garbler.decode_output(0, out[0]), a < b) << "b=" << b;
  }
}

TEST(FreshLabels, TablesNeverRepeatAcrossRounds) {
  const circuit::Circuit c = circuit::make_mac_circuit(MacOptions{8, 8, true});
  SystemRandom rng(Block{0xF4E5, 6});
  CircuitGarbler garbler(c, Scheme::kHalfGates, rng);
  std::set<std::string> seen;
  for (int round = 0; round < 20; ++round) {
    const RoundTables t = garbler.garble_round();
    for (const auto& table : t.tables) {
      const std::string key = table.ct[0].hex() + table.ct[1].hex();
      EXPECT_TRUE(seen.insert(key).second) << "repeated table";
    }
  }
}

}  // namespace
}  // namespace maxel::gc
