// Optimizer passes: semantics preservation over random vectors, dead
// logic removal, duplicate-gate merging, and interaction with sequential
// circuits and Bristol imports.
#include <gtest/gtest.h>

#include "circuit/arith_ext.hpp"
#include "circuit/bristol.hpp"
#include "circuit/builder.hpp"
#include "circuit/circuits.hpp"
#include "circuit/optimize.hpp"
#include "crypto/prg.hpp"

namespace maxel::circuit {
namespace {

using crypto::Prg;

void expect_equivalent(const Circuit& a, const Circuit& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.garbler_inputs.size(), b.garbler_inputs.size());
  ASSERT_EQ(a.evaluator_inputs.size(), b.evaluator_inputs.size());
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  Prg prg(crypto::Block{seed, 0x0E});
  for (int t = 0; t < 30; ++t) {
    const auto g = prg.bits(a.garbler_inputs.size());
    const auto e = prg.bits(a.evaluator_inputs.size());
    ASSERT_EQ(eval_plain(a, g, e), eval_plain(b, g, e));
  }
}

TEST(Dce, RemovesDanglingLogic) {
  Builder b;
  const Bus a = b.garbler_inputs(8);
  const Bus x = b.evaluator_inputs(8);
  const Bus sum = b.add(a, x);
  (void)b.mult_serial(a, x, 8);  // dead: result unused
  b.set_outputs(sum);
  const Circuit c = b.take();

  OptimizeStats stats;
  const Circuit opt = dead_code_eliminate(c, &stats);
  EXPECT_GT(stats.gates_removed(), 30u);  // the whole multiplier
  EXPECT_EQ(opt.and_count(), 7u);         // just the adder remains
  expect_equivalent(c, opt, 1);
}

TEST(Dce, KeepsStatePaths) {
  const Circuit c = make_mac_circuit(MacOptions{8, 8, true});
  const Circuit opt = dead_code_eliminate(c);
  // The builder leaves some truncation leftovers (high partial-sum bits
  // that never reach the b-bit output); DCE may trim those, but the
  // accumulator feedback path must survive intact.
  EXPECT_LE(opt.gates.size(), c.gates.size());
  EXPECT_GT(opt.and_count(), 50u);
  EXPECT_EQ(opt.dffs.size(), c.dffs.size());

  // Sequential semantics preserved across rounds.
  Prg prg(crypto::Block{3, 3});
  std::vector<RoundInputs> rounds(6);
  for (auto& r : rounds) {
    r.garbler_bits = prg.bits(8);
    r.evaluator_bits = prg.bits(8);
  }
  EXPECT_EQ(eval_sequential_plain(c, rounds),
            eval_sequential_plain(opt, rounds));
}

TEST(Cse, MergesIdenticalGates) {
  Builder b;
  const Wire p = b.garbler_input();
  const Wire q = b.evaluator_input();
  // Two identical ANDs plus a commuted copy: all one gate after CSE.
  const Wire g1 = b.gate(GateType::kAnd, p, q);
  const Wire g2 = b.gate(GateType::kAnd, p, q);
  const Wire g3 = b.gate(GateType::kAnd, q, p);
  b.set_outputs({b.xor_(g1, g2), g3});
  const Circuit c = b.take();
  ASSERT_EQ(c.and_count(), 3u);

  OptimizeStats stats;
  const Circuit opt = optimize(c, &stats);
  EXPECT_EQ(opt.and_count(), 1u);
  expect_equivalent(c, opt, 2);
  // g1 == g2, so the XOR folds away too... but post-construction passes
  // do not re-fold XORs; the output is XOR(w, w) evaluating to 0.
  const auto out = eval_plain(opt, {true}, {true});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(Optimize, HardwareNetlistCompressesToFoldedSize) {
  // The deliberately-unfolded hardware MAC has many constant-operand
  // gates; the optimizer cannot remove them (they are live), but CSE
  // should still find some sharing without changing semantics.
  const Circuit c = make_mac_circuit(MacOptions{8, 8, true});
  const Circuit opt = optimize(c);
  EXPECT_LE(opt.gates.size(), c.gates.size());
  Prg prg(crypto::Block{4, 4});
  std::vector<RoundInputs> rounds(4);
  for (auto& r : rounds) {
    r.garbler_bits = prg.bits(8);
    r.evaluator_bits = prg.bits(8);
  }
  EXPECT_EQ(eval_sequential_plain(c, rounds),
            eval_sequential_plain(opt, rounds));
}

TEST(Optimize, BristolRoundTripThenOptimize) {
  // Import adds EQW/INV lowering artifacts; optimize must keep the
  // function intact while cleaning what it can.
  const Circuit c = make_divider_circuit(5);
  const Circuit imported = from_bristol(to_bristol(c));
  const Circuit opt = optimize(imported);
  expect_equivalent(c, opt, 5);
  EXPECT_LE(opt.gates.size(), imported.gates.size());
}

TEST(Optimize, IdempotentOnCleanCircuits) {
  const Circuit c = make_millionaires_circuit(16);
  OptimizeStats s1, s2;
  const Circuit once = optimize(c, &s1);
  const Circuit twice = optimize(once, &s2);
  EXPECT_EQ(once.gates.size(), twice.gates.size());
  EXPECT_EQ(s2.gates_removed(), 0u);
}

TEST(Schedule, ReducesPeakLiveOnMacAndKeepsSemantics) {
  // Schedule the cleaned netlist (DCE+CSE first) — the same pipeline
  // the bench gate measures; the raw builder output carries dead
  // truncation leftovers that mask the locality win.
  const Circuit c = optimize(make_mac_circuit(MacOptions{16, 16, true}));
  ScheduleStats stats;
  const Circuit s = schedule_for_locality(c, &stats);
  EXPECT_EQ(stats.gates, c.gates.size());
  EXPECT_EQ(stats.peak_live_before, peak_live_wires(c));
  EXPECT_EQ(stats.peak_live_after, peak_live_wires(s));
  // The bench gate's contract on the b=16 MAC netlist.
  EXPECT_LE(stats.peak_live_after * 10, stats.peak_live_before * 9);
  EXPECT_LE(stats.sum_live_after, stats.sum_live_before);

  // Sequential semantics across DFF rounds are untouched.
  Prg prg(crypto::Block{0x5C4ED, 1});
  std::vector<RoundInputs> rounds(8);
  for (auto& r : rounds) {
    r.garbler_bits = prg.bits(c.garbler_inputs.size());
    r.evaluator_bits = prg.bits(c.evaluator_inputs.size());
  }
  EXPECT_EQ(eval_sequential_plain(s, rounds), eval_sequential_plain(c, rounds));
}

TEST(Schedule, StableOnItsOwnOutput) {
  for (const std::size_t bits : {8u, 16u}) {
    const Circuit once =
        schedule_for_locality(make_mac_circuit(MacOptions{bits, bits, true}));
    const Circuit twice = schedule_for_locality(once);
    ASSERT_EQ(twice.gates.size(), once.gates.size());
    for (std::size_t i = 0; i < once.gates.size(); ++i) {
      EXPECT_EQ(twice.gates[i].type, once.gates[i].type) << "gate " << i;
      EXPECT_EQ(twice.gates[i].a, once.gates[i].a) << "gate " << i;
      EXPECT_EQ(twice.gates[i].b, once.gates[i].b) << "gate " << i;
      EXPECT_EQ(twice.gates[i].out, once.gates[i].out) << "gate " << i;
    }
  }
}

TEST(Schedule, NeverWorseOnAlreadyTightCircuits) {
  // A pure chain is already at minimal live width; the never-worse
  // guard must keep the input order rather than churn it.
  Builder b;
  const Bus a = b.garbler_inputs(8);
  Wire acc = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) acc = b.and_(acc, a[i]);
  b.set_outputs({acc});
  const Circuit c = b.take();

  ScheduleStats stats;
  const Circuit s = schedule_for_locality(c, &stats);
  EXPECT_EQ(stats.peak_live_after, stats.peak_live_before);
  EXPECT_EQ(stats.sum_live_after, stats.sum_live_before);
  EXPECT_EQ(s.gates.size(), c.gates.size());
  expect_equivalent(c, s, 7);
}

TEST(Schedule, HandlesMultiOutputFanout) {
  // One gate feeding several outputs and several consumers: its wire
  // must stay live to the end, and each output must decode its own bit.
  Builder b;
  const Bus a = b.garbler_inputs(4);
  const Bus x = b.evaluator_inputs(4);
  const Wire shared = b.and_(a[0], x[0]);
  const Wire u = b.xor_(shared, a[1]);
  const Wire v = b.and_(shared, x[1]);
  const Wire w = b.or_(shared, b.and_(a[2], x[2]));
  b.set_outputs({shared, u, v, w, shared});  // the same wire twice
  const Circuit c = b.take();

  const Circuit s = schedule_for_locality(c);
  ASSERT_EQ(s.outputs.size(), c.outputs.size());
  EXPECT_EQ(s.outputs.front(), s.outputs.back());  // dup outputs preserved
  expect_equivalent(c, s, 11);
}

TEST(Schedule, SchedulesDffCycleCircuits) {
  // The accumulator feedback q -> logic -> d is a cycle through state,
  // not a combinational cycle; scheduling must handle it (the round
  // boundary cuts it) and keep every d-wire producer.
  const Circuit c = make_mac_circuit(MacOptions{8, 8, true});
  ASSERT_TRUE(c.is_sequential());
  const Circuit s = schedule_for_locality(c);
  ASSERT_EQ(s.dffs.size(), c.dffs.size());
  std::vector<bool> defined(s.num_wires, false);
  for (const auto& g : s.gates) defined[g.out] = true;
  for (const auto& d : s.dffs) EXPECT_TRUE(defined[d.d]);
}

TEST(Schedule, ThrowsOnCombinationalCycle) {
  Circuit c;
  c.num_wires = 6;
  c.garbler_inputs = {2};
  c.evaluator_inputs = {3};
  // Gates 4 and 5 each consume the other's output: no valid order.
  c.gates.push_back({GateType::kAnd, 2, 5, 4});
  c.gates.push_back({GateType::kAnd, 3, 4, 5});
  c.outputs = {4, 5};
  EXPECT_THROW(schedule_for_locality(c), std::invalid_argument);
}

TEST(Schedule, OptimizeOptionsComposePasses) {
  Builder b;
  const Bus a = b.garbler_inputs(8);
  const Bus x = b.evaluator_inputs(8);
  (void)b.mult_serial(a, x, 8);  // dead logic for DCE to strip
  b.set_outputs(b.add(a, x));
  const Circuit c = b.take();

  OptimizeStats ostats;
  ScheduleStats sstats;
  const Circuit out = optimize(c, OptimizeOptions{.schedule = true}, &ostats,
                               &sstats);
  EXPECT_GT(ostats.gates_removed(), 0u);
  EXPECT_EQ(sstats.gates, out.gates.size());
  EXPECT_EQ(peak_live_wires(out), sstats.peak_live_after);
  expect_equivalent(c, out, 13);
  // Plain optimize() (no options) must not reorder: flag off means the
  // historical pass pipeline only.
  const Circuit plain = optimize(c, OptimizeOptions{}, nullptr, nullptr);
  const Circuit legacy = optimize(c);
  EXPECT_EQ(plain.gates.size(), legacy.gates.size());
  for (std::size_t i = 0; i < plain.gates.size(); ++i)
    EXPECT_EQ(plain.gates[i].out, legacy.gates[i].out) << "gate " << i;
}

}  // namespace
}  // namespace maxel::circuit
