// Optimizer passes: semantics preservation over random vectors, dead
// logic removal, duplicate-gate merging, and interaction with sequential
// circuits and Bristol imports.
#include <gtest/gtest.h>

#include "circuit/arith_ext.hpp"
#include "circuit/bristol.hpp"
#include "circuit/builder.hpp"
#include "circuit/circuits.hpp"
#include "circuit/optimize.hpp"
#include "crypto/prg.hpp"

namespace maxel::circuit {
namespace {

using crypto::Prg;

void expect_equivalent(const Circuit& a, const Circuit& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.garbler_inputs.size(), b.garbler_inputs.size());
  ASSERT_EQ(a.evaluator_inputs.size(), b.evaluator_inputs.size());
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  Prg prg(crypto::Block{seed, 0x0E});
  for (int t = 0; t < 30; ++t) {
    const auto g = prg.bits(a.garbler_inputs.size());
    const auto e = prg.bits(a.evaluator_inputs.size());
    ASSERT_EQ(eval_plain(a, g, e), eval_plain(b, g, e));
  }
}

TEST(Dce, RemovesDanglingLogic) {
  Builder b;
  const Bus a = b.garbler_inputs(8);
  const Bus x = b.evaluator_inputs(8);
  const Bus sum = b.add(a, x);
  (void)b.mult_serial(a, x, 8);  // dead: result unused
  b.set_outputs(sum);
  const Circuit c = b.take();

  OptimizeStats stats;
  const Circuit opt = dead_code_eliminate(c, &stats);
  EXPECT_GT(stats.gates_removed(), 30u);  // the whole multiplier
  EXPECT_EQ(opt.and_count(), 7u);         // just the adder remains
  expect_equivalent(c, opt, 1);
}

TEST(Dce, KeepsStatePaths) {
  const Circuit c = make_mac_circuit(MacOptions{8, 8, true});
  const Circuit opt = dead_code_eliminate(c);
  // The builder leaves some truncation leftovers (high partial-sum bits
  // that never reach the b-bit output); DCE may trim those, but the
  // accumulator feedback path must survive intact.
  EXPECT_LE(opt.gates.size(), c.gates.size());
  EXPECT_GT(opt.and_count(), 50u);
  EXPECT_EQ(opt.dffs.size(), c.dffs.size());

  // Sequential semantics preserved across rounds.
  Prg prg(crypto::Block{3, 3});
  std::vector<RoundInputs> rounds(6);
  for (auto& r : rounds) {
    r.garbler_bits = prg.bits(8);
    r.evaluator_bits = prg.bits(8);
  }
  EXPECT_EQ(eval_sequential_plain(c, rounds),
            eval_sequential_plain(opt, rounds));
}

TEST(Cse, MergesIdenticalGates) {
  Builder b;
  const Wire p = b.garbler_input();
  const Wire q = b.evaluator_input();
  // Two identical ANDs plus a commuted copy: all one gate after CSE.
  const Wire g1 = b.gate(GateType::kAnd, p, q);
  const Wire g2 = b.gate(GateType::kAnd, p, q);
  const Wire g3 = b.gate(GateType::kAnd, q, p);
  b.set_outputs({b.xor_(g1, g2), g3});
  const Circuit c = b.take();
  ASSERT_EQ(c.and_count(), 3u);

  OptimizeStats stats;
  const Circuit opt = optimize(c, &stats);
  EXPECT_EQ(opt.and_count(), 1u);
  expect_equivalent(c, opt, 2);
  // g1 == g2, so the XOR folds away too... but post-construction passes
  // do not re-fold XORs; the output is XOR(w, w) evaluating to 0.
  const auto out = eval_plain(opt, {true}, {true});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(Optimize, HardwareNetlistCompressesToFoldedSize) {
  // The deliberately-unfolded hardware MAC has many constant-operand
  // gates; the optimizer cannot remove them (they are live), but CSE
  // should still find some sharing without changing semantics.
  const Circuit c = make_mac_circuit(MacOptions{8, 8, true});
  const Circuit opt = optimize(c);
  EXPECT_LE(opt.gates.size(), c.gates.size());
  Prg prg(crypto::Block{4, 4});
  std::vector<RoundInputs> rounds(4);
  for (auto& r : rounds) {
    r.garbler_bits = prg.bits(8);
    r.evaluator_bits = prg.bits(8);
  }
  EXPECT_EQ(eval_sequential_plain(c, rounds),
            eval_sequential_plain(opt, rounds));
}

TEST(Optimize, BristolRoundTripThenOptimize) {
  // Import adds EQW/INV lowering artifacts; optimize must keep the
  // function intact while cleaning what it can.
  const Circuit c = make_divider_circuit(5);
  const Circuit imported = from_bristol(to_bristol(c));
  const Circuit opt = optimize(imported);
  expect_equivalent(c, opt, 5);
  EXPECT_LE(opt.gates.size(), imported.gates.size());
}

TEST(Optimize, IdempotentOnCleanCircuits) {
  const Circuit c = make_millionaires_circuit(16);
  OptimizeStats s1, s2;
  const Circuit once = optimize(c, &s1);
  const Circuit twice = optimize(once, &s2);
  EXPECT_EQ(once.gates.size(), twice.gates.size());
  EXPECT_EQ(s2.gates_removed(), 0u);
}

}  // namespace
}  // namespace maxel::circuit
