// Hostile-input contract for the MXREUS1 codec, in the chunk_io mold:
// every truncation of a valid record throws ReusableFormatError, every
// single-byte mutation either parses or throws (never crashes, never
// over-allocates), and hostile count prefixes are rejected by value
// before any allocation.
#include "proto/reusable_io.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "circuit/circuits.hpp"
#include "crypto/rng.hpp"

namespace maxel {
namespace {

gc::ReusableCircuit sample_artifact() {
  const auto c = circuit::make_mac_circuit({.bit_width = 8});
  crypto::SystemRandom rng(crypto::Block{13, 37});
  auto rc = gc::make_reusable_circuit(c, rng);
  rc.view.bit_width = 8;
  for (std::size_t i = 0; i < rc.view.fingerprint.size(); ++i)
    rc.view.fingerprint[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return rc;
}

TEST(ReusableIo, ArtifactRoundtripsBothFramings) {
  const auto rc = sample_artifact();
  const auto view_bytes = proto::serialize_reusable_view(rc.view);
  const auto full_bytes = proto::serialize_reusable(rc);
  ASSERT_GT(full_bytes.size(), view_bytes.size());

  const auto view = proto::parse_reusable_view(view_bytes.data(),
                                               view_bytes.size());
  EXPECT_EQ(view.bit_width, rc.view.bit_width);
  EXPECT_EQ(view.fingerprint, rc.view.fingerprint);
  EXPECT_EQ(view.n_gates, rc.view.n_gates);
  EXPECT_EQ(view.tables, rc.view.tables);
  EXPECT_EQ(view.dff_init_masked, rc.view.dff_init_masked);
  EXPECT_EQ(view.dff_corrections, rc.view.dff_corrections);
  EXPECT_EQ(view.output_flips, rc.view.output_flips);

  const auto full = proto::parse_reusable(full_bytes.data(),
                                          full_bytes.size());
  EXPECT_EQ(full.view.tables, rc.view.tables);
  EXPECT_EQ(full.garbler_flips, rc.garbler_flips);
  EXPECT_EQ(full.evaluator_flips, rc.evaluator_flips);
}

TEST(ReusableIo, FramingFlagsAreMutuallyExclusive) {
  const auto rc = sample_artifact();
  const auto view_bytes = proto::serialize_reusable_view(rc.view);
  const auto full_bytes = proto::serialize_reusable(rc);
  // A client must refuse a secrets-bearing blob outright.
  EXPECT_THROW(proto::parse_reusable_view(full_bytes.data(),
                                          full_bytes.size()),
               proto::ReusableFormatError);
  // The spool loader must refuse a secrets-free blob.
  EXPECT_THROW(proto::parse_reusable(view_bytes.data(), view_bytes.size()),
               proto::ReusableFormatError);
}

TEST(ReusableIo, EveryTruncationThrowsTyped) {
  const auto rc = sample_artifact();
  for (const auto& blob :
       {proto::serialize_reusable_view(rc.view), proto::serialize_reusable(rc)}) {
    for (std::size_t len = 0; len < blob.size(); ++len) {
      EXPECT_THROW(proto::parse_reusable_view(blob.data(), len),
                   proto::ReusableFormatError)
          << "len=" << len;
      EXPECT_THROW(proto::parse_reusable(blob.data(), len),
                   proto::ReusableFormatError)
          << "len=" << len;
    }
  }
}

TEST(ReusableIo, TrailingBytesAreRejected) {
  const auto rc = sample_artifact();
  auto blob = proto::serialize_reusable_view(rc.view);
  blob.push_back(0);
  EXPECT_THROW(proto::parse_reusable_view(blob.data(), blob.size()),
               proto::ReusableFormatError);
}

TEST(ReusableIo, EveryByteMutationIsHandled) {
  const auto rc = sample_artifact();
  const auto blob = proto::serialize_reusable_view(rc.view);
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (const std::uint8_t mut : {std::uint8_t{0x80}, std::uint8_t{0x00},
                                   std::uint8_t{0xff}}) {
      auto copy = blob;
      copy[pos] = mut == 0x80 ? static_cast<std::uint8_t>(copy[pos] ^ 0x80)
                              : mut;
      if (copy == blob) continue;
      try {
        (void)proto::parse_reusable_view(copy.data(), copy.size());
      } catch (const proto::ReusableFormatError&) {
        // Typed rejection is the expected common case.
      }
      // Anything else escaping (bad_alloc, segfault) fails the test run.
    }
  }
}

TEST(ReusableIo, HostileCountsRejectedBeforeAllocation) {
  const auto rc = sample_artifact();
  auto blob = proto::serialize_reusable_view(rc.view);
  const std::size_t gates_off = 8 + 1 + 4 + 32;  // magic|flag|bits|sha
  const auto stamp_u64 = [&](std::size_t off, std::uint64_t v) {
    auto copy = blob;
    std::memcpy(copy.data() + off, &v, 8);
    EXPECT_THROW(proto::parse_reusable_view(copy.data(), copy.size()),
                 proto::ReusableFormatError)
        << "off=" << off << " v=" << v;
  };
  stamp_u64(gates_off, ~0ull);                  // gate count
  stamp_u64(gates_off, proto::kMaxReusableGates + 1);
  stamp_u64(gates_off + 8, ~0ull);              // table slots
  stamp_u64(gates_off + 16, ~0ull);             // garbler inputs
  stamp_u64(gates_off + 24, proto::kMaxReusableInputs + 1);
  stamp_u64(gates_off + 32, ~0ull);             // outputs
  stamp_u64(gates_off + 40, proto::kMaxReusableDffs + 1);
}

TEST(ReusableIo, ClientSetupRoundtripAndRejects) {
  proto::ReusableClientSetup s;
  s.extended = 8192;
  s.watermark = 100;
  s.has_artifact = true;
  for (std::size_t i = 0; i < s.artifact_sha.size(); ++i)
    s.artifact_sha[i] = static_cast<std::uint8_t>(i);
  const auto buf = proto::serialize_reusable_client_setup(s);
  ASSERT_EQ(buf.size(), proto::kReusableClientSetupWire);
  const auto back = proto::parse_reusable_client_setup(buf.data(), buf.size());
  EXPECT_EQ(back.extended, s.extended);
  EXPECT_EQ(back.watermark, s.watermark);
  EXPECT_TRUE(back.has_artifact);
  EXPECT_EQ(back.artifact_sha, s.artifact_sha);

  for (std::size_t len = 0; len < buf.size(); ++len)
    EXPECT_THROW(proto::parse_reusable_client_setup(buf.data(), len),
                 proto::ReusableFormatError);
  auto bad = buf;
  bad[16] = 2;  // artifact flag not boolean
  EXPECT_THROW(proto::parse_reusable_client_setup(bad.data(), bad.size()),
               proto::ReusableFormatError);
  proto::ReusableClientSetup inverted;
  inverted.extended = 1;
  inverted.watermark = 2;
  const auto ibuf = proto::serialize_reusable_client_setup(inverted);
  EXPECT_THROW(proto::parse_reusable_client_setup(ibuf.data(), ibuf.size()),
               proto::ReusableFormatError);
}

TEST(ReusableIo, ServerSetupRoundtripAndRejects) {
  proto::ReusableServerSetup s;
  s.fresh = true;
  s.pool_id = 77;
  s.cookie = crypto::Block{123, 456};
  s.start_index = 4096;
  s.claim_count = 96;
  s.extend_count = 8192;
  s.artifact_bytes = 1234;
  for (std::size_t i = 0; i < s.artifact_sha.size(); ++i)
    s.artifact_sha[i] = static_cast<std::uint8_t>(255 - i);
  const auto buf = proto::serialize_reusable_server_setup(s);
  ASSERT_EQ(buf.size(), proto::kReusableServerSetupWire);
  const auto back = proto::parse_reusable_server_setup(buf.data(), buf.size());
  EXPECT_EQ(back.fresh, s.fresh);
  EXPECT_EQ(back.pool_id, s.pool_id);
  EXPECT_EQ(back.cookie, s.cookie);
  EXPECT_EQ(back.start_index, s.start_index);
  EXPECT_EQ(back.claim_count, s.claim_count);
  EXPECT_EQ(back.extend_count, s.extend_count);
  EXPECT_EQ(back.artifact_bytes, s.artifact_bytes);
  EXPECT_EQ(back.artifact_sha, s.artifact_sha);

  for (std::size_t len = 0; len < buf.size(); ++len)
    EXPECT_THROW(proto::parse_reusable_server_setup(buf.data(), len),
                 proto::ReusableFormatError);

  const auto stamp = [&](std::size_t off, std::uint64_t v) {
    auto copy = buf;
    std::memcpy(copy.data() + off, &v, 8);
    EXPECT_THROW(proto::parse_reusable_server_setup(copy.data(), copy.size()),
                 proto::ReusableFormatError);
  };
  stamp(1 + 8 + 16 + 8, proto::kMaxReusableClaim + 1);      // claim count
  stamp(1 + 8 + 16 + 16, ~0ull);                            // extend count
  stamp(1 + 8 + 16 + 24, proto::kMaxReusableArtifactBytes + 1);
  auto bad = buf;
  bad[0] = 7;  // fresh flag not boolean
  EXPECT_THROW(proto::parse_reusable_server_setup(bad.data(), bad.size()),
               proto::ReusableFormatError);
}

}  // namespace
}  // namespace maxel
