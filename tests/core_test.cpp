// MAXelerator core tests: the hardware netlist's gate inventory and
// semantics, the FSM schedule's structural claims (core counts, per-stage
// occupancy, <=2 idle slots, pipeline latency), cycle-accurate throughput
// (3b cycles per MAC), table-level equivalence with the reference
// half-gates garbler, and full transparency to the standard software
// evaluator (the paper's end-to-end correctness claim).
#include <gtest/gtest.h>

#include "circuit/circuits.hpp"
#include "core/hw_netlist.hpp"
#include "core/maxelerator.hpp"
#include "core/schedule.hpp"
#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "gc/garble.hpp"
#include "hwsim/pcie.hpp"

namespace maxel::core {
namespace {

using circuit::MacOptions;
using circuit::RoundInputs;
using circuit::to_bits;
using crypto::Block;
using crypto::Prg;
using crypto::SystemRandom;

class HwNetlistWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HwNetlistWidth, InventoryMatchesPaperFormulas) {
  const std::size_t b = GetParam();
  const HwMacNetlist hw = build_hw_mac_netlist(b);

  EXPECT_EQ(hw.ands_per_stage(), 2 * b + 8);
  EXPECT_EQ(hw.circuit.and_count(), (2 * b + 8) * b);
  EXPECT_EQ(hw.seg1_cores(), b / 2);
  EXPECT_EQ(hw.seg2_cores(), (b / 2 + 8 + 2) / 3);
  EXPECT_EQ(hw.circuit.dffs.size(), b);

  // Latency: b + log2(b) + 2 stages (Sec. 4.3).
  std::size_t log2b = 0;
  while ((1u << (log2b + 1)) <= b) ++log2b;
  EXPECT_EQ(hw.pipeline_latency_stages(), b + log2b + 2);
}

TEST_P(HwNetlistWidth, PlaintextSemanticsMatchMacReference) {
  const std::size_t b = GetParam();
  const HwMacNetlist hw = build_hw_mac_netlist(b);
  const MacOptions opt{b, b, true, circuit::Builder::MulStructure::kTree};

  Prg prg(Block{b, 1000});
  const std::uint64_t mask = b >= 64 ? ~0ull : ((1ull << b) - 1);
  std::vector<RoundInputs> rounds(8);
  std::uint64_t expect = 0;
  for (auto& r : rounds) {
    const std::uint64_t a = prg.next_u64() & mask;
    const std::uint64_t x = prg.next_u64() & mask;
    r.garbler_bits = to_bits(a, b);
    r.evaluator_bits = to_bits(x, b);
    expect = circuit::mac_reference(expect, a, x, opt);
  }
  EXPECT_EQ(circuit::from_bits(eval_sequential_plain(hw.circuit, rounds)),
            expect);
}

INSTANTIATE_TEST_SUITE_P(Widths, HwNetlistWidth,
                         ::testing::Values(4, 8, 16, 32));

TEST(HwNetlist, PaperCoreCounts) {
  // Table 2's "No of cores" row: 8 / 14 / 24 for b = 8 / 16 / 32.
  EXPECT_EQ(build_hw_mac_netlist(8).cores(), 8u);
  EXPECT_EQ(build_hw_mac_netlist(16).cores(), 14u);
  EXPECT_EQ(build_hw_mac_netlist(32).cores(), 24u);
}

TEST(HwNetlist, RejectsBadWidths) {
  EXPECT_THROW((void)build_hw_mac_netlist(3), std::invalid_argument);
  EXPECT_THROW((void)build_hw_mac_netlist(12), std::invalid_argument);  // b/2 not 2^k
  EXPECT_THROW((void)build_hw_mac_netlist(128), std::invalid_argument);
}

class ScheduleWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScheduleWidth, NoSlotCollisionsAndFullSteadyOccupancy) {
  const std::size_t b = GetParam();
  const HwMacNetlist hw = build_hw_mac_netlist(b);
  const std::uint64_t rounds = 6;
  const FsmSchedule sched(hw, rounds);

  std::vector<std::array<std::optional<ScheduledOp>, 3>> ops;
  std::size_t max_ops = 0;
  std::uint64_t total_ops = 0;
  for (std::uint64_t t = 0; t < sched.total_stages(); ++t) {
    ASSERT_NO_THROW(sched.ops_at_stage(t, ops));  // throws on collision
    std::size_t count = 0;
    for (const auto& core : ops)
      for (const auto& cell : core) count += cell.has_value() ? 1 : 0;
    EXPECT_EQ(count, sched.ops_in_stage(t));
    max_ops = std::max(max_ops, count);
    total_ops += count;
  }
  // Full steady-state occupancy: 2b+8 ANDs per stage...
  EXPECT_EQ(max_ops, 2 * b + 8);
  // ...and every gate of every round scheduled exactly once.
  EXPECT_EQ(total_ops, hw.ands_per_round() * rounds);
  // Paper's claim: at most two idle garbling slots per steady stage.
  EXPECT_LE(sched.steady_idle_slots_per_stage(), 2u);
}

TEST_P(ScheduleWidth, SteadyStateThroughputIsThreeBCyclesPerMac) {
  const std::size_t b = GetParam();
  const HwMacNetlist hw = build_hw_mac_netlist(b);
  const FsmSchedule s4(hw, 4);
  const FsmSchedule s12(hw, 12);
  EXPECT_EQ(s12.total_cycles() - s4.total_cycles(), 3 * b * 8);
}

INSTANTIATE_TEST_SUITE_P(Widths, ScheduleWidth,
                         ::testing::Values(4, 8, 16, 32));

TEST(Schedule, PaperCyclesPerMac) {
  // Table 2: 24 / 48 / 96 cycles per MAC at b = 8 / 16 / 32.
  for (const std::size_t b : {8u, 16u, 32u}) {
    const HwMacNetlist hw = build_hw_mac_netlist(b);
    const FsmSchedule s1(hw, 100);
    const FsmSchedule s2(hw, 101);
    EXPECT_EQ(s2.total_cycles() - s1.total_cycles(), 3 * b);
  }
}

// --- Cycle-accurate simulator --------------------------------------------

struct SimRun {
  std::vector<RoundOutput> outputs;
  MaxeleratorStats stats;
  Block delta;
};

SimRun run_sim(std::size_t b, std::uint64_t rounds, bool capture = false) {
  MaxeleratorConfig cfg;
  cfg.bit_width = b;
  cfg.capture_wire_labels = capture;
  SystemRandom rng(Block{b, rounds});
  MaxeleratorSim sim(cfg, rng);
  SimRun out;
  sim.run(rounds, [&](RoundOutput&& r) { out.outputs.push_back(std::move(r)); });
  out.stats = sim.stats();
  out.delta = sim.delta();
  return out;
}

class SimWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimWidth, EndToEndTransparentToSoftwareEvaluator) {
  const std::size_t b = GetParam();
  const std::uint64_t rounds = 10;
  const HwMacNetlist hw = build_hw_mac_netlist(b);
  const MacOptions opt{b, b, true, circuit::Builder::MulStructure::kTree};

  const SimRun run = run_sim(b, rounds);
  ASSERT_EQ(run.outputs.size(), rounds);

  gc::CircuitEvaluator evaluator(hw.circuit, gc::Scheme::kHalfGates);
  Prg prg(Block{b, 77});
  const std::uint64_t mask = b >= 64 ? ~0ull : ((1ull << b) - 1);
  std::uint64_t expect = 0;
  std::vector<Block> out_labels;
  std::vector<Block> final_output_labels0;

  for (std::uint64_t r = 0; r < rounds; ++r) {
    const auto& ro = run.outputs[r];
    EXPECT_EQ(ro.round, r);
    if (r == 0) evaluator.set_initial_state_labels(ro.initial_state_active);

    const std::uint64_t a = prg.next_u64() & mask;
    const std::uint64_t x = prg.next_u64() & mask;
    expect = circuit::mac_reference(expect, a, x, opt);

    std::vector<Block> g_labels(b), e_labels(b);
    for (std::size_t i = 0; i < b; ++i) {
      g_labels[i] = ((a >> i) & 1u) != 0 ? ro.garbler_labels0[i] ^ run.delta
                                         : ro.garbler_labels0[i];
      e_labels[i] = ((x >> i) & 1u) != 0 ? ro.evaluator_labels0[i] ^ run.delta
                                         : ro.evaluator_labels0[i];
    }
    const std::vector<Block> fixed = {ro.fixed_labels0[0],
                                      ro.fixed_labels0[1] ^ run.delta};
    out_labels = evaluator.eval_round(ro.tables, g_labels, e_labels, fixed);
    final_output_labels0 = ro.output_labels0;
  }

  // Decode with the point-and-permute map of the last round.
  std::vector<bool> map(final_output_labels0.size());
  for (std::size_t i = 0; i < map.size(); ++i)
    map[i] = final_output_labels0[i].lsb();
  EXPECT_EQ(circuit::from_bits(gc::decode_with_map(out_labels, map)), expect);
}

TEST_P(SimWidth, StatsMatchArchitecturalClaims) {
  const std::size_t b = GetParam();
  const std::uint64_t rounds = 8;
  const SimRun run = run_sim(b, rounds);
  const auto& st = run.stats;

  EXPECT_EQ(st.cores, b / 2 + (b / 2 + 8 + 2) / 3);
  EXPECT_EQ(st.tables, (2 * b + 8) * b * rounds);
  EXPECT_EQ(st.table_bytes, st.tables * 32);
  EXPECT_DOUBLE_EQ(st.cycles_per_mac, 3.0 * static_cast<double>(b));
  EXPECT_EQ(st.max_ops_per_stage, 2 * b + 8);
  EXPECT_LE(st.steady_idle_per_stage, 2u);
  EXPECT_GT(st.utilization(), 0.5);
  EXPECT_EQ(st.busy_slots, st.tables);
  // The k*(b/2) bits/cycle RNG bank (plus its buffer) must cover demand:
  // bursts may exceed per-cycle production, but never starve the engine.
  EXPECT_EQ(st.rng_underflows, 0u);
  EXPECT_GT(st.rng_gated_fraction, 0.0);  // power gating engaged
  EXPECT_EQ(st.pcie_bytes, st.table_bytes);
}

INSTANTIATE_TEST_SUITE_P(Widths, SimWidth, ::testing::Values(4, 8, 16, 32));

TEST(Sim, PaperThroughputNumbers) {
  // Table 2 MAXelerator rows: cycles/MAC and time/MAC at 200 MHz.
  const struct {
    std::size_t b;
    std::uint64_t cycles;
    double time_us;
    std::size_t cores;
  } expected[] = {{8, 24, 0.12, 8}, {16, 48, 0.24, 14}, {32, 96, 0.48, 24}};
  for (const auto& e : expected) {
    const SimRun run = run_sim(e.b, 4);
    EXPECT_DOUBLE_EQ(run.stats.cycles_per_mac, static_cast<double>(e.cycles));
    EXPECT_NEAR(run.stats.time_per_mac_us(), e.time_us, 1e-9);
    EXPECT_EQ(run.stats.cores, e.cores);
  }
}

TEST(Sim, TablesAreByteIdenticalToReferenceGarbler) {
  // Every table the simulator emits must equal the half-gates table the
  // reference GateGarbler produces from the same labels and tweak —
  // the hardware is a scheduling transformation, not a crypto change.
  const std::size_t b = 8;
  const std::uint64_t rounds = 3;
  const HwMacNetlist hw = build_hw_mac_netlist(b);
  const SimRun run = run_sim(b, rounds, /*capture=*/true);

  const gc::GateGarbler reference(gc::Scheme::kHalfGates, run.delta);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const auto& ro = run.outputs[r];
    ASSERT_EQ(ro.wire_labels0.size(), hw.circuit.num_wires);
    for (std::size_t gi = 0; gi < hw.circuit.gates.size(); ++gi) {
      const auto& g = hw.circuit.gates[gi];
      if (circuit::is_free(g.type)) continue;
      gc::GarbledTable expect;
      const Block out0 = reference.garble(
          circuit::and_form(g.type), ro.wire_labels0[g.a], ro.wire_labels0[g.b],
          gc::gate_tweak(static_cast<std::uint32_t>(gi), r), expect);
      const auto& got = ro.tables.tables[hw.table_position[gi]];
      ASSERT_EQ(got, expect) << "round " << r << " gate " << gi;
      ASSERT_EQ(ro.wire_labels0[g.out], out0);
    }
  }
}



TEST(Sim, UndersizedTableMemoryReportsBackPressure) {
  // With one-table blocks the shared drain port (1 table/cycle) cannot
  // keep up with up to `cores` writes per cycle; the model reports the
  // back-pressure. (The memory model is observational: tables still
  // reach the host in RoundOutput, so correctness is unaffected --
  // a real device would stall the engine instead.)
  MaxeleratorConfig cfg;
  cfg.bit_width = 8;
  cfg.memory_tables_per_block = 1;
  SystemRandom rng(Block{0x3E3, 1});
  MaxeleratorSim sim(cfg, rng);
  sim.run(4);
  EXPECT_GT(sim.stats().memory_overflow_stalls, 0u);

  MaxeleratorConfig roomy;
  roomy.bit_width = 8;
  roomy.memory_tables_per_block = 512;
  SystemRandom rng2(Block{0x3E3, 2});
  MaxeleratorSim sim2(roomy, rng2);
  sim2.run(4);
  EXPECT_EQ(sim2.stats().memory_overflow_stalls, 0u);
}

TEST(Sim, RunsOnRingOscillatorEntropy) {
  // The simulator draws labels from any RandomSource; with the paper's
  // RO-based TRNG model it must still produce evaluable tables.
  MaxeleratorConfig cfg;
  cfg.bit_width = 4;
  crypto::RingOscillatorRng rng;
  MaxeleratorSim sim(cfg, rng);
  std::vector<RoundOutput> outs;
  sim.run(2, [&](RoundOutput&& ro) { outs.push_back(std::move(ro)); });
  ASSERT_EQ(outs.size(), 2u);
  // Labels must be distinct (the RO model is not stuck).
  EXPECT_NE(outs[0].garbler_labels0[0], outs[0].garbler_labels0[1]);
  EXPECT_NE(outs[0].garbler_labels0[0], outs[1].garbler_labels0[0]);
}

TEST(Sim, RunIsSingleShot) {
  MaxeleratorConfig cfg;
  cfg.bit_width = 8;
  SystemRandom rng(Block{1, 1});
  MaxeleratorSim sim(cfg, rng);
  sim.run(2);
  EXPECT_THROW(sim.run(2), std::logic_error);
}

TEST(Sim, FreshLabelsEveryRound) {
  // Security requirement from Sec. 3: "even if the model does not change,
  // new labels are required for every garbling operation".
  const SimRun run = run_sim(8, 4);
  for (std::size_t i = 1; i < run.outputs.size(); ++i) {
    EXPECT_NE(run.outputs[i].garbler_labels0[0],
              run.outputs[i - 1].garbler_labels0[0]);
    EXPECT_NE(run.outputs[i].evaluator_labels0[0],
              run.outputs[i - 1].evaluator_labels0[0]);
    EXPECT_NE(run.outputs[i].tables.tables.front(),
              run.outputs[i - 1].tables.tables.front());
  }
}

TEST(Sim, PcieIsTheSustainedStreamingBottleneck) {
  const SimRun run = run_sim(16, 6);
  EXPECT_EQ(run.stats.pcie_bytes, run.stats.table_bytes);
  EXPECT_GT(run.stats.pcie_seconds, 0.0);
  // The engine emits one 32-byte table per core per cycle — far beyond
  // any PCIe link. Sustained *streaming* throughput is link-bound, which
  // is exactly the paper's closing caveat ("after certain threshold,
  // communication capability of the server may become the bottleneck");
  // Table 2 reports garbling throughput, which is the un-throttled rate.
  EXPECT_LT(run.stats.effective_mac_per_sec(), run.stats.mac_per_sec());
  const double link_tables_per_sec =
      hwsim::PcieLink().max_tables_per_sec(32);
  const double link_macs_per_sec =
      link_tables_per_sec / static_cast<double>((2 * 16 + 8) * 16);
  EXPECT_NEAR(run.stats.effective_mac_per_sec(), link_macs_per_sec,
              0.25 * link_macs_per_sec);
}

}  // namespace
}  // namespace maxel::core
