// Protocol-v3 compact wire records (proto/v3_records.hpp): byte-exact
// round trips, channel framing, and the chunk_io hostile-input drill —
// every truncation, every per-byte mutation, and every lying count
// prefix must surface as a typed error, never a crash, a hang, or an
// OOM-sized allocation. These are the first bytes a v3 peer parses off
// the socket, before any cryptographic check can help.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/prg.hpp"
#include "crypto/rng.hpp"
#include "proto/channel.hpp"
#include "proto/v3_records.hpp"
#include "sweep_env.hpp"

namespace maxel::proto {
namespace {

using crypto::Block;
using crypto::SystemRandom;

SeedExpansionRecord make_seed_record(std::uint64_t seed,
                                     std::size_t corrections) {
  SystemRandom rng(Block{seed, 0xEC});
  SeedExpansionRecord r;
  r.label_seed = rng.next_block();
  for (std::size_t i = 0; i < corrections; ++i)
    r.corrections.emplace_back(static_cast<std::uint32_t>(3 * i + 1),
                               rng.next_block());
  return r;
}

V3RoundFrame make_frame(std::uint64_t seed, std::size_t rows,
                        std::size_t outputs) {
  SystemRandom rng(Block{seed, 0xF0});
  V3RoundFrame f;
  for (std::size_t i = 0; i < rows; ++i) f.rows.push_back(rng.next_block());
  for (std::size_t i = 0; i < outputs; ++i)
    f.output_map.push_back(rng.next_bit());
  return f;
}

ResumptionTicket make_ticket(std::uint64_t seed) {
  SystemRandom rng(Block{seed, 0x71});
  ResumptionTicket t;
  t.pool_id = rng.next_u64();
  t.client_id = rng.next_block();
  t.cookie = rng.next_block();
  return t;
}

// ---- Round trips ---------------------------------------------------------

TEST(V3Records, SeedExpansionRoundTrip) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{17}}) {
    const SeedExpansionRecord r = make_seed_record(n + 1, n);
    const auto bytes = serialize_seed_expansion(r);
    const SeedExpansionRecord back =
        parse_seed_expansion(bytes.data(), bytes.size());
    EXPECT_EQ(back.label_seed, r.label_seed);
    EXPECT_EQ(back.corrections, r.corrections);
  }
}

TEST(V3Records, RoundFrameRoundTripAndPackedBits) {
  const V3RoundFrame f = make_frame(1, 141, 17);
  const auto bytes = serialize_round_frame(f);
  // Select bits ride 8-per-byte: 4 + rows*16 + 4 + ceil(17/8).
  EXPECT_EQ(bytes.size(), V3RoundFrame::wire_size(141, 17));
  EXPECT_EQ(bytes.size(), 4u + 141 * 16 + 4 + 3);
  const V3RoundFrame back = parse_round_frame(bytes.data(), bytes.size(),
                                              141, 17);
  EXPECT_EQ(back.rows, f.rows);
  EXPECT_EQ(back.output_map, f.output_map);
}

TEST(V3Records, TicketRoundTripIsFixedSize) {
  const ResumptionTicket t = make_ticket(5);
  const auto bytes = serialize_ticket(t);
  EXPECT_EQ(bytes.size(), ResumptionTicket::kWireSize);
  const ResumptionTicket back = parse_ticket(bytes.data(), bytes.size());
  EXPECT_EQ(back.pool_id, t.pool_id);
  EXPECT_EQ(back.client_id, t.client_id);
  EXPECT_EQ(back.cookie, t.cookie);
}

TEST(V3Records, ChannelFramingMatchesByteCodecs) {
  auto [tx, rx] = MemoryChannel::create_pair();

  const SeedExpansionRecord r = make_seed_record(2, 5);
  send_seed_expansion(*tx, r);
  const SeedExpansionRecord r2 = recv_seed_expansion(*rx);
  EXPECT_EQ(serialize_seed_expansion(r2), serialize_seed_expansion(r));

  const V3RoundFrame f = make_frame(3, 64, 24);
  send_round_frame(*tx, f);
  const V3RoundFrame f2 = recv_round_frame(*rx, 64, 24);
  EXPECT_EQ(serialize_round_frame(f2), serialize_round_frame(f));

  const ResumptionTicket t = make_ticket(4);
  send_ticket(*tx, t);
  const ResumptionTicket t2 = recv_ticket(*rx);
  EXPECT_EQ(serialize_ticket(t2), serialize_ticket(t));

  const V3ClientSetup cs{1000, 400};
  send_client_setup(*tx, cs);
  const V3ClientSetup cs2 = recv_client_setup(*rx);
  EXPECT_EQ(cs2.extended, cs.extended);
  EXPECT_EQ(cs2.watermark, cs.watermark);

  V3ServerSetup ss;
  ss.fresh = true;
  ss.pool_id = 9;
  ss.cookie = Block{7, 8};
  ss.start_index = 128;
  ss.claim_count = 64;
  ss.extend_count = 8192;
  send_server_setup(*tx, ss);
  const V3ServerSetup ss2 = recv_server_setup(*rx);
  EXPECT_EQ(ss2.fresh, ss.fresh);
  EXPECT_EQ(ss2.pool_id, ss.pool_id);
  EXPECT_EQ(ss2.cookie, ss.cookie);
  EXPECT_EQ(ss2.start_index, ss.start_index);
  EXPECT_EQ(ss2.claim_count, ss.claim_count);
  EXPECT_EQ(ss2.extend_count, ss.extend_count);
}

TEST(V3Records, RecvRejectsOversizeSeedRecordBeforeAllocating) {
  auto [tx, rx] = MemoryChannel::create_pair();
  tx->send_u64(~std::uint64_t{0});  // lying length prefix
  EXPECT_THROW((void)recv_seed_expansion(*rx), V3FormatError);
}

TEST(V3Records, FrameCountMismatchesAreTyped) {
  const V3RoundFrame f = make_frame(6, 10, 8);
  const auto bytes = serialize_round_frame(f);
  // Same bytes, wrong structural expectation: rejected by value.
  EXPECT_THROW((void)parse_round_frame(bytes.data(), bytes.size(), 11, 8),
               V3FormatError);
  EXPECT_THROW((void)parse_round_frame(bytes.data(), bytes.size(), 10, 9),
               V3FormatError);
  // Expectations beyond the caps are a caller bug surfaced as an error,
  // not an allocation.
  EXPECT_THROW(
      (void)parse_round_frame(bytes.data(), bytes.size(), kMaxV3Rows + 1, 8),
      V3FormatError);
}

TEST(V3Records, ServerSetupValidatesByValue) {
  auto [tx, rx] = MemoryChannel::create_pair();
  V3ServerSetup ss;
  ss.fresh = false;
  ss.extend_count = kMaxV3Extend + 1;  // hostile extension demand
  send_server_setup(*tx, ss);
  EXPECT_THROW((void)recv_server_setup(*rx), V3FormatError);

  V3ClientSetup cs{10, 11};  // watermark above extended: inconsistent
  send_client_setup(*tx, cs);
  EXPECT_THROW((void)recv_client_setup(*rx), V3FormatError);
}

// ---------------------------------------------------------------------------
// Hostile-input drill (same shape as chunk_io_test): anything but
// success or std::runtime_error — notably std::bad_alloc — escapes and
// fails the test.

template <typename Parse>
void must_not_crash(const std::vector<std::uint8_t>& bytes, Parse parse,
                    const char* what) {
  try {
    (void)parse(bytes.data(), bytes.size());
  } catch (const std::runtime_error&) {
    // Typed rejection: the acceptable failure mode.
  }
  SUCCEED() << what;
}

TEST(V3RecordsFuzz, EveryTruncationFailsTyped) {
  const auto seed_bytes = serialize_seed_expansion(make_seed_record(7, 6));
  for (std::size_t len = 0; len < seed_bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(seed_bytes.begin(),
                                  seed_bytes.begin() + static_cast<long>(len));
    EXPECT_THROW((void)parse_seed_expansion(cut.data(), cut.size()),
                 std::runtime_error)
        << "seed record truncated to " << len;
  }
  const auto frame_bytes = serialize_round_frame(make_frame(8, 12, 9));
  for (std::size_t len = 0; len < frame_bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(
        frame_bytes.begin(), frame_bytes.begin() + static_cast<long>(len));
    EXPECT_THROW((void)parse_round_frame(cut.data(), cut.size(), 12, 9),
                 std::runtime_error)
        << "round frame truncated to " << len;
  }
  const auto ticket_bytes = serialize_ticket(make_ticket(9));
  for (std::size_t len = 0; len < ticket_bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(
        ticket_bytes.begin(), ticket_bytes.begin() + static_cast<long>(len));
    EXPECT_THROW((void)parse_ticket(cut.data(), cut.size()),
                 std::runtime_error)
        << "ticket truncated to " << len;
  }
}

TEST(V3RecordsFuzz, SingleByteMutationsNeverCrash) {
  const auto seed_bytes = serialize_seed_expansion(make_seed_record(10, 4));
  const auto frame_bytes = serialize_round_frame(make_frame(11, 8, 5));
  const auto ticket_bytes = serialize_ticket(make_ticket(12));
  const auto drill = [](const std::vector<std::uint8_t>& full, auto parse,
                        const char* what) {
    for (std::size_t off = 0; off < full.size(); ++off) {
      for (const std::uint8_t m : {static_cast<std::uint8_t>(full[off] ^ 0x80),
                                   static_cast<std::uint8_t>(0x00),
                                   static_cast<std::uint8_t>(0xFF)}) {
        std::vector<std::uint8_t> mut = full;
        mut[off] = m;
        must_not_crash(mut, parse, what);
      }
    }
  };
  drill(seed_bytes,
        [](const std::uint8_t* d, std::size_t n) {
          return parse_seed_expansion(d, n);
        },
        "seed record");
  drill(frame_bytes,
        [](const std::uint8_t* d, std::size_t n) {
          return parse_round_frame(d, n, 8, 5);
        },
        "round frame");
  drill(ticket_bytes,
        [](const std::uint8_t* d, std::size_t n) { return parse_ticket(d, n); },
        "ticket");
}

TEST(V3RecordsFuzz, RandomMultiByteMutationsNeverCrash) {
  const auto full = serialize_seed_expansion(make_seed_record(13, 12));
  const std::uint64_t fuzz_seed = test::sweep_seed(0xF3);
  SCOPED_TRACE("fuzz_seed=" + std::to_string(fuzz_seed));
  crypto::Prg prg(Block{fuzz_seed, 0x3D});
  const int n_trials = test::sweep_trials(400);
  for (int trial = 0; trial < n_trials; ++trial) {
    std::vector<std::uint8_t> mut = full;
    const int edits = 1 + static_cast<int>(prg.next_u64() % 8);
    for (int e = 0; e < edits; ++e) {
      const std::size_t off = prg.next_u64() % mut.size();
      mut[off] ^= static_cast<std::uint8_t>(prg.next_u64() | 1);
    }
    if (trial % 3 == 0) mut.resize(prg.next_u64() % (mut.size() + 1));
    must_not_crash(mut,
                   [](const std::uint8_t* d, std::size_t n) {
                     return parse_seed_expansion(d, n);
                   },
                   "random mutation");
  }
}

TEST(V3RecordsFuzz, HostileCountPrefixesRejectedBeforeAllocation) {
  // Hand-built seed record header with a lying correction count.
  const auto header_with_count = [](std::uint64_t n) {
    std::vector<std::uint8_t> b;
    const char magic[8] = {'M', 'X', 'S', 'E', 'E', 'D', '3', '\0'};
    b.insert(b.end(), magic, magic + 8);
    for (int i = 0; i < 16; ++i) b.push_back(0xAB);  // label seed
    for (int i = 0; i < 8; ++i)
      b.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    return b;
  };
  // Beyond the cap: rejected by value before any allocation.
  for (const std::uint64_t lie : {~std::uint64_t{0}, ~std::uint64_t{0} / 2,
                                  std::uint64_t{kMaxV3Corrections + 1}}) {
    const auto b = header_with_count(lie);
    EXPECT_THROW((void)parse_seed_expansion(b.data(), b.size()),
                 V3FormatError)
        << "correction count " << lie;
  }
  // At the cap: passes value validation, fails on remaining-bytes — no
  // cap-sized reserve happens.
  const auto at_cap = header_with_count(kMaxV3Corrections);
  EXPECT_THROW((void)parse_seed_expansion(at_cap.data(), at_cap.size()),
               V3FormatError);

  // Round frame: a lying row count never survives against the structural
  // expectation, even when the buffer claims to be big enough.
  std::vector<std::uint8_t> frame(4 + 16, 0);
  frame[0] = 0xFF;
  frame[1] = 0xFF;
  frame[2] = 0xFF;
  frame[3] = 0xFF;
  EXPECT_THROW((void)parse_round_frame(frame.data(), frame.size(), 1, 1),
               V3FormatError);
}

}  // namespace
}  // namespace maxel::proto
